package core

import (
	"context"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/reward"
	"repro/internal/vec"
)

// LocalGreedy is the paper's Algorithm 2 ("greedy 2"): in each of k rounds,
// every data point is a candidate center; the one with the largest coverage
// reward against the current residuals wins, with ties broken toward the
// lowest point index. Complexity O(kn²) sequential; the candidate scan is
// embarrassingly parallel and is spread over Workers goroutines with a
// deterministic index-order tie-break.
type LocalGreedy struct {
	// Workers bounds the candidate-scan parallelism; <= 0 uses all CPUs.
	Workers int
	// Obs receives per-round and per-scan telemetry; nil runs
	// uninstrumented.
	Obs obs.Collector
}

// Name implements Algorithm.
func (LocalGreedy) Name() string { return "greedy2" }

// Run implements Algorithm.
func (a LocalGreedy) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	ctx = orBG(ctx)
	n := in.N()
	y := in.NewResiduals()
	res := &Result{Algorithm: a.Name()}
	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return cancelRun(a.Obs, res, err)
		}
		rs := startRound(ctx, a.Obs, a.Name(), j+1)
		if rs.active() {
			rs.c.Emit(obs.Event{Type: obs.EvScanStart, Alg: a.Name(), Round: j + 1})
		}
		idx, _, cerr := parallel.ArgmaxFloatObsCtx(ctx, n, a.Workers, a.Obs, func(i int) float64 {
			return in.RoundGain(in.Set.Point(i), y)
		})
		if cerr != nil {
			// Cancelled mid-scan: the argmax saw only part of the
			// candidates, so committing it could diverge from the
			// uncancelled run. Discard the round and return the prefix.
			return cancelRun(a.Obs, res, cerr)
		}
		if rs.active() {
			rs.c.Count(obs.CtrCandidates, int64(n))
			rs.c.Emit(obs.Event{Type: obs.EvScanEnd, Alg: a.Name(), Round: j + 1,
				Fields: map[string]float64{"candidates": float64(n)}})
		}
		c := in.Set.Point(idx).Clone()
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c)
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		rs.end(gain, map[string]float64{"candidates": float64(n)})
	}
	return res, nil
}

var _ Algorithm = LocalGreedy{}

// BestPointCenter exposes one round of the Algorithm-2 selection rule:
// the index of the data point maximizing the coverage reward against the
// residuals y, and that reward. It is reused by the exhaustive baseline's
// seeding and by tests.
func BestPointCenter(in *reward.Instance, y []float64, workers int) (int, float64) {
	return parallel.ArgmaxFloat(in.N(), workers, func(i int) float64 {
		return in.RoundGain(in.Set.Point(i), y)
	})
}

// centersClone deep-copies a center list (helper shared by the algorithms).
func centersClone(cs []vec.V) []vec.V {
	out := make([]vec.V, len(cs))
	for i, c := range cs {
		out[i] = c.Clone()
	}
	return out
}
