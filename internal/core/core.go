// Package core implements the paper's primary contribution: the four
// heuristics for the optimal content-distribution problem.
//
//   - RoundBased  — Algorithm 1, "greedy 1": each round approximately solves
//     the continuous single-center problem (Eq. 10) with a pluggable solver.
//   - LocalGreedy — Algorithm 2, "greedy 2": each round picks the data point
//     maximizing the coverage reward (Eq. 13). O(kn²).
//   - SimpleGreedy — Algorithm 3, "greedy 3": each round centers on the point
//     with the largest remaining single-point reward w_i·y_i (Eq. 14). O(kn).
//   - ComplexGreedy — Algorithm 4, "greedy 4": grows a disk from every seed
//     point by smallest-enclosing-ball re-centering and keeps the best
//     resulting center, which may lie anywhere in space (Eq. 15). O(kn³).
//
// All algorithms share the residual bookkeeping of package reward and return
// a Result carrying the per-round gains g(j) that the paper's Table I
// reports.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/vec"
)

// SumTolerance is the absolute tolerance used when comparing a sum of
// per-round gains against a stored total. k rounds of IEEE summation over
// well-scaled gains drift far less than this; a larger discrepancy means a
// bookkeeping bug, not float error.
const SumTolerance = 1e-6

// Result is the outcome of running an algorithm: the k selected centers in
// selection order, the per-round gains g(1..k), and their sum (the achieved
// objective value f).
type Result struct {
	Algorithm string
	Centers   []vec.V
	Gains     []float64
	Total     float64
}

// PrefixTotals returns the cumulative objective after each round: element
// j−1 is the total reward of the first j centers. Because every algorithm
// here is incremental (round j never revises rounds 1..j−1), one Run at
// k = K yields the results for every smaller k as a prefix — the k-sweep
// experiments exploit this instead of re-running per k.
func (r *Result) PrefixTotals() []float64 {
	out := make([]float64, len(r.Gains))
	var sum float64
	for j, g := range r.Gains {
		sum += g
		out[j] = sum
	}
	return out
}

// Validate checks internal consistency (matching lengths, gain sum).
func (r *Result) Validate() error {
	if len(r.Centers) != len(r.Gains) {
		return fmt.Errorf("core: %d centers but %d gains", len(r.Centers), len(r.Gains))
	}
	var s float64
	for _, g := range r.Gains {
		if g < 0 {
			return fmt.Errorf("core: negative round gain %v", g)
		}
		s += g
	}
	if diff := s - r.Total; diff > SumTolerance || diff < -SumTolerance {
		return fmt.Errorf("core: gain sum %v != total %v", s, r.Total)
	}
	return nil
}

// Algorithm is a content-distribution heuristic: it selects k broadcast
// centers for the instance and reports the per-round gains.
//
// Run is anytime under cancellation: when ctx is cancelled or its deadline
// expires, implementations stop within one round boundary and return the
// best-so-far partial Result — a valid prefix of the centers an uncancelled
// run would have selected, bit-for-bit, with Validate() passing — together
// with ctx.Err(). A partially scanned round is discarded, never committed.
// Callers therefore must inspect the Result even when err is non-nil if
// they want the anytime answer. A nil ctx behaves like context.Background().
type Algorithm interface {
	// Name is a short identifier such as "greedy2".
	Name() string
	// Run selects k centers. Implementations must not mutate the instance.
	Run(ctx context.Context, in *reward.Instance, k int) (*Result, error)
}

// ErrNilInstance is returned when Run receives a nil instance.
var ErrNilInstance = errors.New("core: nil instance")

// orBG normalizes a nil context so implementations can call ctx.Err()
// unconditionally.
func orBG(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// cancelRun finalizes an anytime early return: it records the cancelled
// lifecycle event (obs.EvCancelled with the completed-round count) and hands
// back the partial result with the context's error. res always holds a
// valid prefix of completed rounds when this is called.
func cancelRun(c obs.Collector, res *Result, err error) (*Result, error) {
	if obs.Active(c) {
		c.Count(obs.CtrCancelled, 1)
		c.Emit(obs.Event{Type: obs.EvCancelled, Alg: res.Algorithm, Round: len(res.Gains),
			Fields: map[string]float64{"rounds": float64(len(res.Gains))}})
	}
	return res, err
}

// Instrument returns a copy of alg with the telemetry collector attached.
// Every algorithm in this package carries an optional Obs field; unknown
// algorithms are returned unchanged. A SwapLocalSearch seed is instrumented
// recursively so its rounds are traced too. Instrument only attaches the
// collector to the algorithm itself; attach it to the instance with
// reward.Instance.SetCollector to also count reward evaluations.
func Instrument(a Algorithm, c obs.Collector) Algorithm {
	if !obs.Active(c) {
		return a
	}
	switch t := a.(type) {
	case RoundBased:
		t.Obs = c
		return t
	case LocalGreedy:
		t.Obs = c
		return t
	case LazyGreedy:
		t.Obs = c
		return t
	case SimpleGreedy:
		t.Obs = c
		return t
	case ComplexGreedy:
		t.Obs = c
		return t
	case NearLinear:
		t.Obs = c
		return t
	case SwapLocalSearch:
		t.Obs = c
		if t.Seed != nil {
			t.Seed = Instrument(t.Seed, c)
		}
		return t
	case WarmStarted:
		t.Obs = c
		if t.Base != nil {
			t.Base = Instrument(t.Base, c)
		}
		return t
	default:
		return a
	}
}

// roundScope bundles the shared per-round instrumentation all algorithms
// emit: a round_start event on entry and a round_end event carrying the
// gain, wall time, and any extra fields on exit. When the context carries an
// ambient tracing span (the serving layer installs one around each solve),
// the scope also opens a "round" child span, so a served request yields a
// reconstructable request → solve → round tree; outside a span tree the
// scope emits exactly the events it always has.
type roundScope struct {
	c     obs.Collector
	alg   string
	trace string
	round int
	timer obs.Timer
	span  *obs.Span
}

// startRound opens an instrumented round scope. With an inactive collector
// it returns an inert scope at zero cost beyond the branch. Round events
// carry the ambient span's trace (request) ID, so consumers joining rounds
// back to a request — the serving layer's per-round telemetry — can filter
// by the request instead of trusting round numbers alone.
func startRound(ctx context.Context, c obs.Collector, alg string, round int) roundScope {
	if !obs.Active(c) {
		return roundScope{}
	}
	parent := obs.SpanFromContext(ctx)
	trace := parent.TraceID()
	c.Emit(obs.Event{Type: obs.EvRoundStart, Alg: alg, Round: round, Trace: trace})
	sp := parent.Child("round")
	sp.SetAttr("round", float64(round))
	return roundScope{c: c, alg: alg, trace: trace, round: round,
		timer: obs.StartTimer(c, obs.TimRound), span: sp}
}

// active reports whether the scope carries a live collector.
func (rs roundScope) active() bool { return rs.c != nil }

// end closes the scope, recording the round gain and wall time merged with
// any extra fields (extra may be nil; it is not retained). A round cancelled
// mid-scan never reaches end; its span is left open, which the trace shows
// as a span_start without a span_end.
func (rs roundScope) end(gain float64, extra map[string]float64) {
	if rs.c == nil {
		return
	}
	ns := rs.timer.Stop()
	fields := map[string]float64{"gain": gain, "wall_ns": float64(ns)}
	for k, v := range extra {
		fields[k] = v
	}
	rs.c.Count(obs.CtrRounds, 1)
	rs.c.Emit(obs.Event{Type: obs.EvRoundEnd, Alg: rs.alg, Round: rs.round,
		Trace: rs.trace, Fields: fields})
	rs.span.SetAttr("gain", gain)
	for k, v := range extra {
		rs.span.SetAttr(k, v)
	}
	rs.span.End()
}

// checkArgs validates the shared Run preconditions.
func checkArgs(in *reward.Instance, k int) error {
	if in == nil {
		return ErrNilInstance
	}
	if k <= 0 {
		return fmt.Errorf("core: k = %d must be positive", k)
	}
	return nil
}
