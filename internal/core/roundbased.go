package core

import (
	"context"
	"errors"

	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/vec"
)

// InnerSolver approximately solves the continuous per-round problem of the
// paper's Algorithm 1 (Eq. 10): maximize Σ_i w_i·min([1 − d(c, x_i)/r]_+,
// y_i) over c ∈ R^m. The paper proves this subproblem is itself NP-hard
// (§IV.B), so any practical solver is approximate; package optimize provides
// grid, pattern-search, and multistart implementations.
type InnerSolver interface {
	// Name is a short identifier for reporting.
	Name() string
	// Solve returns a center approximately maximizing the round gain
	// against the residuals y. It must not modify y or the instance.
	// Cancellation is cooperative: a solver may return early with a
	// lower-fidelity center or (nil, ctx.Err()); RoundBased discards the
	// whole round either way, so partial inner solutions never leak into
	// the committed prefix.
	Solve(ctx context.Context, in *reward.Instance, y []float64) (vec.V, error)
}

// RoundBased is the paper's Algorithm 1 ("greedy 1"): k rounds, each placing
// one center by (approximately) solving the continuous single-center
// problem, then discounting residuals. With an exact inner solver it attains
// the Theorem-1 ratio 1 − (1 − 1/k)^k ≥ 1 − 1/e.
type RoundBased struct {
	Solver InnerSolver
	// Obs receives per-round telemetry, including one obs.EvInnerSolve
	// event per continuous-solver invocation with its wall time.
	Obs obs.Collector
}

// Name implements Algorithm.
func (RoundBased) Name() string { return "greedy1" }

// Run implements Algorithm.
func (a RoundBased) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	if a.Solver == nil {
		return nil, errors.New("core: RoundBased requires an InnerSolver")
	}
	ctx = orBG(ctx)
	y := in.NewResiduals()
	res := &Result{Algorithm: a.Name()}
	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return cancelRun(a.Obs, res, err)
		}
		rs := startRound(ctx, a.Obs, a.Name(), j+1)
		st := obs.StartTimer(a.Obs, obs.TimInnerSolve)
		c, err := a.Solver.Solve(ctx, in, y)
		if cerr := ctx.Err(); cerr != nil {
			// Cancelled mid-solve: the round's center is (at best) a
			// lower-fidelity answer from a truncated search. Discard the
			// round so the committed prefix stays bit-identical to an
			// uncancelled run's.
			st.Stop()
			return cancelRun(a.Obs, res, cerr)
		}
		if err != nil {
			return nil, err
		}
		solveNS := st.Stop()
		if rs.active() {
			rs.c.Emit(obs.Event{Type: obs.EvInnerSolve, Alg: a.Name(), Round: j + 1,
				Fields: map[string]float64{"wall_ns": float64(solveNS)}})
		}
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c.Clone())
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		rs.end(gain, map[string]float64{"solve_ns": float64(solveNS)})
	}
	return res, nil
}

var _ Algorithm = RoundBased{}
