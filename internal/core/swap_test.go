package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestSwapNeverBelowSeed(t *testing.T) {
	rng := xrand.New(127)
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(t, rng, rng.IntRange(5, 30), norm.L2{}, rng.Uniform(0.5, 2))
		k := rng.IntRange(1, 4)
		seed, err := LocalGreedy{Workers: 1}.Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		swapped, err := SwapLocalSearch{}.Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := swapped.Validate(); err != nil {
			t.Fatal(err)
		}
		if swapped.Total < seed.Total-1e-9 {
			t.Fatalf("trial %d: swap %v below greedy seed %v", trial, swapped.Total, seed.Total)
		}
		if len(swapped.Centers) != k {
			t.Fatalf("trial %d: %d centers, want %d", trial, len(swapped.Centers), k)
		}
	}
}

func TestSwapImprovesMyopicTrap(t *testing.T) {
	// Classic greedy trap: a middle point that covers both side clusters
	// partially tempts round 1, but the 2-center optimum centers on the
	// clusters themselves. Swap search must escape where pure greedy may
	// not; at minimum it reaches the point-restricted optimum here.
	pts := []vec.V{
		// Left cluster.
		vec.Of(0, 0), vec.Of(0.2, 0), vec.Of(0, 0.2),
		// Right cluster.
		vec.Of(3, 0), vec.Of(3.2, 0), vec.Of(3, 0.2),
		// Tempting middle point.
		vec.Of(1.6, 0),
	}
	in := mustInstance(t, pts,
		[]float64{1, 1, 1, 1, 1, 1, 1.5}, norm.L2{}, 1.8)
	swapped, err := SwapLocalSearch{}.Run(context.Background(), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	best := bruteForcePoints(in, 2)
	if swapped.Total < best-1e-9 {
		t.Fatalf("swap %v below point-restricted optimum %v", swapped.Total, best)
	}
}

func TestSwapValidationAndName(t *testing.T) {
	if (SwapLocalSearch{}).Name() != "greedy2+swap" {
		t.Errorf("name = %q", (SwapLocalSearch{}).Name())
	}
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	if _, err := (SwapLocalSearch{}).Run(context.Background(), nil, 1); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := (SwapLocalSearch{}).Run(context.Background(), in, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// Custom seed algorithm is honored.
	res, err := SwapLocalSearch{Seed: SimpleGreedy{}}.Run(context.Background(), in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Total-1) > 1e-9 {
		t.Errorf("total = %v", res.Total)
	}
}

// Swap-stability sanity: after convergence no single-point swap improves.
func TestSwapIsStable(t *testing.T) {
	rng := xrand.New(131)
	in := randomInstance(t, rng, 15, norm.L2{}, 1.2)
	res, err := SwapLocalSearch{}.Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := in.Objective(res.Centers)
	centers := centersClone(res.Centers)
	for j := range centers {
		orig := centers[j]
		for i := 0; i < in.N(); i++ {
			centers[j] = in.Set.Point(i)
			if v := in.Objective(centers); v > base+1e-9 {
				t.Fatalf("improving swap remains: slot %d -> point %d (%v > %v)", j, i, v, base)
			}
		}
		centers[j] = orig
	}
}
