package core

import (
	"context"

	"repro/internal/obs"
	"repro/internal/reward"
	"repro/internal/vec"
)

// WarmStarted wraps a base algorithm with a carry-over comparison for
// re-solves under churn: Run runs Base cold, scores the previous solve's
// centers on the current (possibly mutated) instance, and returns whichever
// is better. The wrapper is therefore never worse than Base alone, and under
// light churn the carried-over centers frequently win outright — the churn
// loop surfaces that via obs.CtrWarmWins and the churn.warmstart_improvement
// histogram.
//
// The comparison only happens on complete runs with len(Prev) == k: a
// cancelled run keeps the anytime contract (a bit-exact prefix of the cold
// run), and a carry-over of the wrong size or dimension is not a valid
// solution to the new problem, so the cold result stands.
type WarmStarted struct {
	Base Algorithm
	// Prev is the previous solve's center set (not mutated, not aliased by
	// the returned result).
	Prev []vec.V
	Obs  obs.Collector
}

// Name reports the base algorithm's name: warm-starting changes which result
// is kept, not what algorithm produced it.
func (w WarmStarted) Name() string { return w.Base.Name() }

// Run implements Algorithm.
func (w WarmStarted) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	res, err := w.Base.Run(ctx, in, k)
	if err != nil || res == nil || len(w.Prev) != k {
		return res, err
	}
	warm, werr := carryOver(in, w.Prev, res.Algorithm)
	if werr != nil {
		// Invalid carry-over (dimension change, nil instance): the cold
		// result stands.
		return res, nil
	}
	improvement := warm.Total - res.Total
	if improvement < 0 {
		improvement = 0
	}
	if obs.Active(w.Obs) {
		w.Obs.Count(obs.CtrWarmStarts, 1)
		w.Obs.Observe(obs.ObsWarmImprove, improvement)
		w.Obs.Emit(obs.Event{Type: obs.EvWarmStart, Alg: res.Algorithm,
			Fields: map[string]float64{"cold": res.Total, "warm": warm.Total, "improvement": improvement}})
	}
	if warm.Total > res.Total {
		if obs.Active(w.Obs) {
			w.Obs.Count(obs.CtrWarmWins, 1)
		}
		return warm, nil
	}
	return res, nil
}

// carryOver replays prev as a round sequence over the instance, producing a
// valid Result whose per-round gains come from the same capped-coverage
// bookkeeping the algorithms use. Gains are non-negative by monotonicity:
// adding a center never decreases any per-point coverage fraction, and IEEE
// summation over pointwise-larger terms is order-preserving.
func carryOver(in *reward.Instance, prev []vec.V, alg string) (*Result, error) {
	e, err := reward.NewEvaluator(in, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: alg, Centers: make([]vec.V, 0, len(prev)), Gains: make([]float64, 0, len(prev))}
	before := e.Objective()
	for _, c := range prev {
		if err := e.Add(c); err != nil {
			return nil, err
		}
		after := e.Objective()
		res.Centers = append(res.Centers, c.Clone())
		res.Gains = append(res.Gains, after-before)
		before = after
	}
	res.Total = before
	return res, nil
}
