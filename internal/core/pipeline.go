package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/reward"
	"repro/internal/vec"
)

// Part is one shard of a partitioned instance: a sub-instance (the shard's
// points, plus any boundary halo the partitioner absorbed from its
// neighbors) together with a stable content-derived identity. The ID must
// depend only on what the shard covers — never on enumeration order or
// worker scheduling — because per-shard solver seeds are derived from it.
type Part struct {
	// ID is the shard's stable identity (e.g. a hash of its anchor grid
	// cell). Two runs that partition the same instance the same way must
	// assign the same IDs regardless of goroutine scheduling.
	ID uint64
	// In is the shard's sub-instance. It must share the parent instance's
	// norm and radius.
	In *reward.Instance
	// Own is the number of points the shard owns (excluding halo
	// duplicates); 0 means unknown/no halo accounting.
	Own int
}

// Partitioner splits an instance into parts for the pipeline. A partitioner
// must be deterministic: the same instance always yields the same parts in
// the same order, with the same IDs.
type Partitioner interface {
	Partition(ctx context.Context, in *reward.Instance, k int) ([]Part, error)
}

// PartSolver solves one part of a partitioned instance — possibly somewhere
// else. It is the remote-solve seam of the pipeline's shard-solve stage: the
// cluster layer (internal/clusterd) installs a PartSolver that forwards the
// part's sub-instance to a peer node over the wire and returns the peer's
// candidate centers.
//
// Contract: a PartSolver must return exactly the centers the local inner
// algorithm (Pipeline.NewSolver(seed)) would have produced for the same
// (part, seed, k) — remote solvers achieve this by running the same
// deterministic algorithm under the same derived seed — so routing never
// changes the merge input. An error is a routing failure, not a result: the
// pipeline falls back to solving the part locally, which by the same
// contract yields an identical result.
type PartSolver func(ctx context.Context, part Part, seed uint64, k int) ([]vec.V, error)

// Pipeline is the partition → shard-solve → merge seam every solve now flows
// through conceptually: the classic single-shot solvers are the trivial
// one-part case (nil Partition), and the sharded solver (internal/shard)
// plugs in a spatial partitioner without touching the orchestration.
//
// Run partitions the instance, solves every part in parallel with an inner
// algorithm (seeded per part via SeedFor so results are independent of
// enumeration order), concatenates the per-part candidate centers in part
// order, and lazily re-scores the union against the full instance with a
// greedy merge. The merge reuses the residual telescoping-gain machinery
// (reward.RoundGain/ApplyRound) under a CELF heap, so each merge round costs
// a handful of candidate re-evaluations instead of a rescan — submodularity
// makes stale bounds valid upper bounds, exactly as in LazyGreedy.
//
// Anytime contract: a cancellation during partitioning or the shard solves
// returns the empty result (the trivial valid prefix — nothing has been
// committed yet) with ctx.Err(); a cancellation mid-merge returns the merge
// rounds committed so far, which are bit-for-bit the prefix an uncancelled
// run would have selected.
type Pipeline struct {
	// Alg is the reported algorithm name (e.g. "sharded(greedy2-lazy)");
	// empty defaults to "pipeline".
	Alg string
	// Partition splits the instance; nil runs the trivial single-part case.
	Partition Partitioner
	// NewSolver constructs the inner per-part algorithm for a derived seed.
	NewSolver func(seed uint64) Algorithm
	// SeedFor derives a part's solver seed from its stable ID; nil uses the
	// ID itself. internal/shard installs a root-seed mixing hash here.
	SeedFor func(partID uint64) uint64
	// SolvePart, when non-nil, is tried first for every part (the remote
	// seam: cluster mode installs a peer-forwarding solver here). On error
	// with a live context the pipeline falls back to the local NewSolver,
	// which the PartSolver contract guarantees yields identical centers.
	SolvePart PartSolver
	// Workers bounds the parallel part solves; <= 0 uses all CPUs.
	Workers int
	// Obs receives pipeline telemetry: partition/shard_solve/merge spans,
	// the shard.* counters, and the merge's per-round events.
	Obs obs.Collector
}

// Name implements Algorithm.
func (p Pipeline) Name() string {
	if p.Alg == "" {
		return "pipeline"
	}
	return p.Alg
}

// Run implements Algorithm.
func (p Pipeline) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	if p.NewSolver == nil {
		return nil, errors.New("core: pipeline needs a NewSolver constructor")
	}
	ctx = orBG(ctx)
	res := &Result{Algorithm: p.Name()}
	if err := ctx.Err(); err != nil {
		return cancelRun(p.Obs, res, err)
	}
	parent := obs.SpanFromContext(ctx)

	// Stage 1: partition. Fast relative to solving; not cancellable
	// mid-flight beyond the entry check above.
	ptimer := obs.StartTimer(p.Obs, obs.TimShardPartition)
	pspan := parent.Child("partition")
	parts, err := p.partition(ctx, in, k)
	ptimer.Stop()
	if err != nil {
		pspan.SetAttr("failed", 1)
		pspan.End()
		return nil, err
	}
	halo := 0
	for _, part := range parts {
		if part.Own > 0 {
			halo += part.In.N() - part.Own
		}
	}
	pspan.SetAttr("parts", float64(len(parts)))
	pspan.SetAttr("halo_points", float64(halo))
	pspan.End()
	if obs.Active(p.Obs) {
		p.Obs.Count(obs.CtrShardParts, int64(len(parts)))
		p.Obs.Count(obs.CtrShardHaloPoints, int64(halo))
	}

	// Stage 2: solve every part in parallel. Candidates land in per-part
	// slots and are concatenated in part order, so the merge's input — and
	// therefore the final result — never depends on completion order.
	cands := make([][]vec.V, len(parts))
	errs := make([]error, len(parts))
	workers := p.Workers
	if p.SolvePart != nil && workers <= 0 {
		// Remote part solves are network-bound, not CPU-bound: fan out one
		// goroutine per part so forwards overlap even on a single-CPU
		// coordinator. Results are bit-identical at any worker count, so
		// this only changes wall time (and lets concurrent forwards spread
		// across peers instead of serializing onto one).
		workers = len(parts)
	}
	parallel.ForCtx(ctx, len(parts), workers, func(i int) {
		part := parts[i]
		sspan := parent.Child("shard_solve")
		sspan.SetAttr("shard", float64(i))
		sspan.SetAttr("n", float64(part.In.N()))
		stimer := obs.StartTimer(p.Obs, obs.TimShardSolve)
		seed := part.ID
		if p.SeedFor != nil {
			seed = p.SeedFor(part.ID)
		}
		kk := k
		if n := part.In.N(); kk > n {
			kk = n
		}
		if p.SolvePart != nil {
			cs, rerr := p.SolvePart(ctx, part, seed, kk)
			if rerr == nil {
				stimer.Stop()
				cands[i] = cs
				sspan.SetAttr("remote", 1)
				sspan.SetAttr("rounds", float64(len(cs)))
				sspan.End()
				return
			}
			if ctx.Err() != nil {
				stimer.Stop()
				sspan.End()
				return
			}
			// Routing failure: fall through to the local solve below, which
			// the PartSolver contract guarantees yields identical centers.
			sspan.SetAttr("remote_failed", 1)
		}
		alg := p.NewSolver(seed)
		r, err := alg.Run(ctx, part.In, kk)
		stimer.Stop()
		if err != nil && ctx.Err() == nil {
			errs[i] = err
			sspan.SetAttr("failed", 1)
			sspan.End()
			return
		}
		if r != nil {
			cands[i] = r.Centers
			sspan.SetAttr("rounds", float64(len(r.Gains)))
			sspan.SetAttr("total", r.Total)
		}
		sspan.End()
	})
	if err := ctx.Err(); err != nil {
		// Cancelled before the merge committed anything: the empty result
		// is the (trivial) valid prefix of the uncancelled run.
		return cancelRun(p.Obs, res, err)
	}
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("core: pipeline shard %d: %w", i, e)
		}
	}
	if obs.Active(p.Obs) {
		p.Obs.Count(obs.CtrShardSolves, int64(len(parts)))
	}
	flat := dedupCenters(cands)
	if len(flat) == 0 {
		return nil, errors.New("core: pipeline produced no candidate centers")
	}
	if obs.Active(p.Obs) {
		p.Obs.Count(obs.CtrShardCandidates, int64(len(flat)))
	}

	// Stage 3: lazy-greedy merge against the full instance.
	mtimer := obs.StartTimer(p.Obs, obs.TimShardMerge)
	mspan := parent.Child("merge")
	mspan.SetAttr("candidates", float64(len(flat)))
	res, err = p.merge(obs.ContextWithSpan(ctx, mspan), in, flat, k, res)
	mtimer.Stop()
	mspan.SetAttr("rounds", float64(len(res.Gains)))
	mspan.SetAttr("total", res.Total)
	mspan.End()
	if err != nil {
		// merge only errors on cancellation; res holds the committed prefix.
		return cancelRun(p.Obs, res, err)
	}
	return res, nil
}

// dedupCenters concatenates per-part candidate centers in part order,
// dropping exact coordinate duplicates (halo overlap makes neighboring
// shards nominate the same data point). First occurrence wins, so the
// surviving order is still deterministic.
func dedupCenters(cands [][]vec.V) []vec.V {
	total := 0
	for _, cs := range cands {
		total += len(cs)
	}
	seen := make(map[string]struct{}, total)
	out := make([]vec.V, 0, total)
	var key []byte
	for _, cs := range cands {
		for _, c := range cs {
			key = key[:0]
			for _, x := range c {
				key = appendF64Key(key, x)
			}
			if _, dup := seen[string(key)]; dup {
				continue
			}
			seen[string(key)] = struct{}{}
			out = append(out, c)
		}
	}
	return out
}

// appendF64Key appends the raw bit pattern of x, so 0.0 and -0.0 — distinct
// inputs — never collide.
func appendF64Key(b []byte, x float64) []byte {
	u := math.Float64bits(x)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// partition runs the configured partitioner, or the trivial single-part
// case: the full instance as one shard with ID 0.
func (p Pipeline) partition(ctx context.Context, in *reward.Instance, k int) ([]Part, error) {
	if p.Partition == nil {
		return []Part{{ID: 0, In: in, Own: in.N()}}, nil
	}
	parts, err := p.Partition.Partition(ctx, in, k)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, errors.New("core: partitioner returned no parts")
	}
	return parts, nil
}

// merge greedily selects up to k centers from the candidate union,
// re-scored against the full instance through the residual bookkeeping
// (RoundGain/ApplyRound) with lazy CELF re-evaluation: a candidate's gain
// from an earlier round is a valid upper bound (gains only shrink as
// residuals decrease), so most rounds re-evaluate a handful of heap tops
// instead of every candidate. Each committed round emits the standard
// round_start/round_end events, so a served sharded solve reports its merge
// rounds exactly like a single-shot solve reports its rounds.
func (p Pipeline) merge(ctx context.Context, in *reward.Instance, cands []vec.V, k int, res *Result) (*Result, error) {
	y := in.NewResiduals()
	h := make(candHeap, 0, len(cands))
	for i, c := range cands {
		h = append(h, candEntry{idx: i, bound: in.RoundGain(c, y), round: 0})
	}
	heap.Init(&h)
	rounds := k
	if rounds > len(cands) {
		rounds = len(cands)
	}
	for j := 0; j < rounds; j++ {
		if err := ctx.Err(); err != nil {
			// Mid-merge cancellation: the committed rounds are bit-for-bit
			// the prefix the uncancelled merge would have selected.
			return res, err
		}
		rs := startRound(ctx, p.Obs, p.Name(), j+1)
		repops := 0
		for h[0].round != j {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			h[0].bound = in.RoundGain(cands[h[0].idx], y)
			h[0].round = j
			heap.Fix(&h, 0)
			repops++
		}
		best := heap.Pop(&h).(candEntry) // unlike LazyGreedy, chosen candidates leave the pool
		c := cands[best.idx].Clone()
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c)
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		if rs.active() {
			evals := repops
			if j == 0 {
				evals += len(cands)
			}
			rs.c.Count(obs.CtrShardMergeRepops, int64(repops))
			rs.c.Count(obs.CtrCandidates, int64(evals))
			rs.end(gain, map[string]float64{
				"repops":     float64(repops),
				"candidates": float64(evals),
			})
		}
	}
	return res, nil
}

// Single wraps a classic one-shot algorithm in the pipeline seam: no
// partitioner (one part), the algorithm itself as the per-part solver, and
// the merge re-scoring its own k candidates. For the greedy family the
// merge provably reproduces the inner result bit for bit: at round j the
// inner algorithm chose the gain-argmax over all points given residuals
// y_j, so restricted to its own candidate set the argmax is unchanged.
func Single(alg Algorithm) Pipeline {
	return Pipeline{
		Alg:       alg.Name(),
		NewSolver: func(uint64) Algorithm { return alg },
	}
}

var _ Algorithm = Pipeline{}
