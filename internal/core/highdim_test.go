package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// The paper claims the algorithms extend to any m-D space and general
// p-norm; exercise 4-D and 5-D under 1-, 2-, 3-, and ∞-norms across every
// algorithm and ball mode.
func TestAlgorithmsInHighDimensions(t *testing.T) {
	rng := xrand.New(137)
	lp3, err := norm.NewLP(3)
	if err != nil {
		t.Fatal(err)
	}
	norms := []norm.Norm{norm.L1{}, norm.L2{}, lp3, norm.LInf{}}
	for _, dim := range []int{4, 5} {
		n := 15
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			p := vec.New(dim)
			for d := range p {
				p[d] = rng.Uniform(0, 4)
			}
			pts[i] = p
			ws[i] = float64(rng.IntRange(1, 5))
		}
		set, err := pointset.New(pts, ws)
		if err != nil {
			t.Fatal(err)
		}
		for _, nm := range norms {
			in, err := reward.NewInstance(set, nm, 2.5)
			if err != nil {
				t.Fatal(err)
			}
			algs := []Algorithm{
				LocalGreedy{Workers: 1},
				LazyGreedy{},
				SimpleGreedy{},
				ComplexGreedy{Workers: 1},
				ComplexGreedy{Mode: BallProjection, Workers: 1},
			}
			if nm.P() == 1 {
				algs = append(algs, ComplexGreedy{Mode: BallExactLP, Workers: 1})
			}
			var localTotal float64
			for _, a := range algs {
				res, err := a.Run(context.Background(), in, 3)
				if err != nil {
					t.Fatalf("dim=%d %s %s: %v", dim, nm.Name(), a.Name(), err)
				}
				if err := res.Validate(); err != nil {
					t.Fatalf("dim=%d %s %s: %v", dim, nm.Name(), a.Name(), err)
				}
				if res.Centers[0].Dim() != dim {
					t.Fatalf("dim=%d %s %s: center dim %d", dim, nm.Name(), a.Name(), res.Centers[0].Dim())
				}
				switch a.(type) {
				case LocalGreedy:
					localTotal = res.Total
				case LazyGreedy:
					if math.Abs(res.Total-localTotal) > 1e-12 {
						t.Fatalf("dim=%d %s: lazy %v != local %v", dim, nm.Name(), res.Total, localTotal)
					}
				}
			}
		}
	}
}
