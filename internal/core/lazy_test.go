package core

import (
	"context"
	"testing"

	"repro/internal/norm"
	"repro/internal/reward"
	"repro/internal/spatial"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// LazyGreedy must be bit-identical to LocalGreedy: same centers, same
// per-round gains, same totals, same tie-breaks — it only reorders *when*
// gains are computed, never what they are.
func TestLazyMatchesLocalExactly(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(t, rng, rng.IntRange(2, 40), norm.L2{}, rng.Uniform(0.4, 2.5))
		k := rng.IntRange(1, 6)
		local, err := LocalGreedy{Workers: 1}.Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := LazyGreedy{}.Run(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		if local.Total != lazy.Total {
			t.Fatalf("trial %d: totals differ: %v vs %v", trial, local.Total, lazy.Total)
		}
		for j := range local.Centers {
			if !local.Centers[j].Equal(lazy.Centers[j]) {
				t.Fatalf("trial %d round %d: centers differ: %v vs %v",
					trial, j, local.Centers[j], lazy.Centers[j])
			}
			if local.Gains[j] != lazy.Gains[j] {
				t.Fatalf("trial %d round %d: gains differ: %v vs %v",
					trial, j, local.Gains[j], lazy.Gains[j])
			}
		}
	}
}

func TestLazyMatchesLocalUnderTies(t *testing.T) {
	// Four isolated identical-weight points: every round gain ties, so both
	// algorithms must select indices 0, 1, 2, 3 in order.
	in := mustInstance(t,
		[]vec.V{vec.Of(0, 0), vec.Of(10, 0), vec.Of(0, 10), vec.Of(10, 10)},
		[]float64{2, 2, 2, 2}, norm.L2{}, 1)
	local, err := LocalGreedy{Workers: 1}.Run(context.Background(), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := LazyGreedy{}.Run(context.Background(), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		want := in.Set.Point(j)
		if !local.Centers[j].Equal(want) || !lazy.Centers[j].Equal(want) {
			t.Fatalf("round %d: tie-break broken: local %v lazy %v want %v",
				j, local.Centers[j], lazy.Centers[j], want)
		}
	}
}

func TestLazyValidation(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	if _, err := (LazyGreedy{}).Run(context.Background(), nil, 1); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := (LazyGreedy{}).Run(context.Background(), in, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if (LazyGreedy{}).Name() != "greedy2-lazy" {
		t.Errorf("name = %q", (LazyGreedy{}).Name())
	}
}

// With a spatial finder installed, every algorithm must produce bit-identical
// results: the accelerated evaluator only skips exactly-zero terms.
func TestFinderPreservesAllAlgorithms(t *testing.T) {
	rng := xrand.New(43)
	for trial := 0; trial < 15; trial++ {
		n := rng.IntRange(5, 40)
		r := rng.Uniform(0.4, 2)
		for _, nm := range []norm.Norm{norm.L1{}, norm.L2{}} {
			in := randomInstance(t, rng, n, nm, r)
			k := rng.IntRange(1, 4)
			algs := []Algorithm{LocalGreedy{Workers: 1}, LazyGreedy{}, SimpleGreedy{}, ComplexGreedy{Workers: 1}}
			plain := make([]*Result, len(algs))
			for ai, a := range algs {
				res, err := a.Run(context.Background(), in, k)
				if err != nil {
					t.Fatal(err)
				}
				plain[ai] = res
			}
			grid, err := spatial.NewGrid(in.Set.Points(), r)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := spatial.NewKDTree(in.Set.Points(), r)
			if err != nil {
				t.Fatal(err)
			}
			for _, finder := range []reward.NeighborFinder{grid, tree} {
				in.SetFinder(finder)
				for ai, a := range algs {
					res, err := a.Run(context.Background(), in, k)
					if err != nil {
						t.Fatal(err)
					}
					if res.Total != plain[ai].Total {
						t.Fatalf("trial %d %s %s (%T): finder changed total %v -> %v",
							trial, nm.Name(), a.Name(), finder, plain[ai].Total, res.Total)
					}
					for j := range res.Centers {
						if !res.Centers[j].Equal(plain[ai].Centers[j]) {
							t.Fatalf("trial %d %s %s (%T) round %d: finder changed center",
								trial, nm.Name(), a.Name(), finder, j)
						}
					}
				}
			}
			in.SetFinder(nil)
		}
	}
}
