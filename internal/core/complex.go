package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// BallMode selects how ComplexGreedy computes the smallest disk covering a
// point group when proposing a new center (step 4 of the paper's new-center
// procedure).
type BallMode int

const (
	// BallAuto picks the best exact construction for the instance norm:
	// Welzl for the 2-norm, rotation for the 1-norm in 2-D, the bounding
	// box for the ∞-norm, and the projection rule otherwise.
	BallAuto BallMode = iota
	// BallProjection always uses the paper's per-dimension (min+max)/2
	// projection rule (§V.B), regardless of norm. Faithful to the paper
	// for the 1-norm in any dimension; an ablation elsewhere.
	BallProjection
	// BallExactLP solves the exact smallest enclosing 1-norm ball in any
	// dimension by linear programming (geom.MinBallL1LP). Only meaningful
	// for 1-norm instances; other norms fall back to BallAuto's dispatch.
	BallExactLP
)

// String implements fmt.Stringer.
func (m BallMode) String() string {
	switch m {
	case BallAuto:
		return "auto"
	case BallProjection:
		return "projection"
	case BallExactLP:
		return "exact-lp"
	default:
		return fmt.Sprintf("BallMode(%d)", int(m))
	}
}

// ComplexGreedy is the paper's Algorithm 4 ("greedy 4"). Each round it runs
// the new-center walk from every data point as a seed: repeatedly take the
// heaviest not-yet-covered point (by residual reward w_j·y_j), compute the
// smallest enclosing ball of the currently covered points plus that point,
// and move the radius-r disk to that ball's center if doing so strictly
// increases the coverage reward. The best walked center over all seeds wins
// the round; unlike Algorithms 2–3, it may lie anywhere in space.
//
// The paper's pseudocode for the walk is internally inconsistent (its stop
// condition fires exactly when its growth step would apply); see DESIGN.md
// §3.3 for the reconstruction implemented here, which also considers the
// pure re-centering move (enclosing ball of the covered set alone) so both
// readings of the pseudocode are subsumed. Complexity O(kn³) as in
// Theorem 4.
type ComplexGreedy struct {
	// Mode selects the enclosing-ball construction.
	Mode BallMode
	// Workers bounds the per-seed parallelism; <= 0 uses all CPUs.
	Workers int
	// Seed drives the Welzl shuffle only; the result is the exact ball
	// regardless of its value.
	Seed uint64
	// Obs receives per-round telemetry: candidate-scan spans over the n
	// seed walks, hill-climb steps (obs.CtrWalkSteps), and every
	// enclosing-ball construction (obs.CtrSEBCalls and obs.EvSEB via
	// package geom). It must be safe for concurrent use; the walks run in
	// parallel.
	Obs obs.Collector
}

// Name implements Algorithm.
func (ComplexGreedy) Name() string { return "greedy4" }

// Run implements Algorithm.
func (a ComplexGreedy) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	ctx = orBG(ctx)
	n := in.N()
	res := &Result{Algorithm: a.Name()}
	y := in.NewResiduals()

	type candidate struct {
		center vec.V
		gain   float64
	}
	cands := make([]candidate, n)

	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return cancelRun(a.Obs, res, err)
		}
		rs := startRound(ctx, a.Obs, a.Name(), j+1)
		if rs.active() {
			rs.c.Emit(obs.Event{Type: obs.EvScanStart, Alg: a.Name(), Round: j + 1})
		}
		var steps int64
		cerr := parallel.ForObsCtx(ctx, n, a.Workers, a.Obs, func(i int) {
			rng := xrand.New(a.Seed ^ (uint64(j)<<32 + uint64(i) + 0x9e37))
			c, g, st := a.walk(in, y, i, rng)
			cands[i] = candidate{center: c, gain: g}
			if rs.active() {
				atomic.AddInt64(&steps, int64(st))
			}
		})
		if cerr != nil {
			// Cancelled mid-scan: only some seed walks ran, so the best
			// candidate may differ from the uncancelled round's. Discard
			// the round and return the committed prefix.
			return cancelRun(a.Obs, res, cerr)
		}
		if rs.active() {
			rs.c.Count(obs.CtrCandidates, int64(n))
			rs.c.Count(obs.CtrWalkSteps, steps)
			rs.c.Emit(obs.Event{Type: obs.EvScanEnd, Alg: a.Name(), Round: j + 1,
				Fields: map[string]float64{"candidates": float64(n), "walk_steps": float64(steps)}})
		}
		best := 0
		for i := 1; i < n; i++ {
			if cands[i].gain > cands[best].gain {
				best = i
			}
		}
		c := cands[best].center
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c)
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		rs.end(gain, map[string]float64{"walk_steps": float64(steps)})
	}
	return res, nil
}

// walk performs the new-center hill climb from seed point i against
// residuals y and returns the best center found with its round gain and the
// number of improving steps taken.
func (a ComplexGreedy) walk(in *reward.Instance, y []float64, seed int, rng *xrand.Rand) (vec.V, float64, int) {
	c := in.Set.Point(seed).Clone()
	gain := in.RoundGain(c, y)
	n := in.N()
	steps := 0
	const eps = 1e-12
	for step := 0; step < n-1; step++ {
		covered := in.CoveredIndices(c)
		// Heaviest point outside the disk by residual potential w_j·y_j
		// (ties toward the lowest index, matching the paper's rule).
		heaviest, hv := -1, 0.0
		inDisk := make(map[int]bool, len(covered))
		for _, ci := range covered {
			inDisk[ci] = true
		}
		for jj := 0; jj < n; jj++ {
			if inDisk[jj] {
				continue
			}
			if v := in.Set.Weight(jj) * y[jj]; v > hv+eps {
				heaviest, hv = jj, v
			}
		}

		bestC, bestG := c, gain
		// Move (a): re-center on the enclosing ball of the covered set
		// (the paper's step when the heaviest point is already inside).
		if len(covered) > 1 {
			if nc, ok := a.ballCenter(in, covered, -1, rng); ok {
				if g := in.RoundGain(nc, y); g > bestG+eps {
					bestC, bestG = nc, g
				}
			}
		}
		// Move (b): include the heaviest uncovered point (paper step 4).
		if heaviest >= 0 {
			if nc, ok := a.ballCenter(in, covered, heaviest, rng); ok {
				if g := in.RoundGain(nc, y); g > bestG+eps {
					bestC, bestG = nc, g
				}
			}
		}
		if bestG <= gain+eps {
			break // no strictly improving move (paper step 5 "otherwise")
		}
		c, gain = bestC, bestG
		steps++
	}
	return c, gain, steps
}

// ballCenter returns the center of the smallest disk covering the points at
// the covered indices plus extra (extra < 0 means none), under the
// configured ball mode.
func (a ComplexGreedy) ballCenter(in *reward.Instance, covered []int, extra int, rng *xrand.Rand) (vec.V, bool) {
	pts := make([]vec.V, 0, len(covered)+1)
	for _, i := range covered {
		pts = append(pts, in.Set.Point(i))
	}
	if extra >= 0 {
		pts = append(pts, in.Set.Point(extra))
	}
	if len(pts) == 0 {
		return nil, false
	}
	var b geom.Ball
	var err error
	switch {
	case a.Mode == BallProjection:
		b, err = geom.ProjectionBall(in.Norm, pts)
	case a.Mode == BallExactLP && in.Norm.P() == 1:
		b, err = geom.MinBallL1LP(pts)
	default:
		b, err = geom.EnclosingBallObs(in.Norm, pts, rng, a.Obs)
	}
	if err != nil {
		return nil, false
	}
	return b.Center, true
}

var _ Algorithm = ComplexGreedy{}
