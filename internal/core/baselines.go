package core

import (
	"context"

	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// PlacementFunc produces k centers for an instance without consulting the
// reward structure round by round — the shape of non-greedy baselines such
// as clustering or random placement. Committing the centers in the order
// returned yields the per-round gains reported in the Result.
type PlacementFunc func(in *reward.Instance, k int) ([]vec.V, error)

// Placement adapts a PlacementFunc into an Algorithm so baselines run
// through the same harness, tie-break-free: gains are whatever the fixed
// placement earns.
type Placement struct {
	Label string
	Place PlacementFunc
}

// Name implements Algorithm.
func (p Placement) Name() string {
	if p.Label == "" {
		return "placement"
	}
	return p.Label
}

// Run implements Algorithm.
func (p Placement) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	ctx = orBG(ctx)
	if err := ctx.Err(); err != nil {
		return &Result{Algorithm: p.Name()}, err
	}
	centers, err := p.Place(in, k)
	if err != nil {
		return nil, err
	}
	y := in.NewResiduals()
	res := &Result{Algorithm: p.Name()}
	for _, c := range centers {
		// The placement is already fixed, so committing a prefix of it on
		// cancellation keeps the anytime contract: each committed round's
		// gain is exact for that prefix.
		if err := ctx.Err(); err != nil {
			return res, err
		}
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c.Clone())
		res.Gains = append(res.Gains, gain)
		res.Total += gain
	}
	return res, nil
}

var _ Algorithm = Placement{}

// RandomPlacement is the weakest baseline: k centers drawn uniformly from
// the data's bounding box (expanded by nothing — contents outside the user
// region are never useful). Deterministic per seed.
func RandomPlacement(seed uint64) Placement {
	return Placement{
		Label: "random",
		Place: func(in *reward.Instance, k int) ([]vec.V, error) {
			rng := xrand.New(seed)
			lo, hi := in.Set.Bounds()
			centers := make([]vec.V, k)
			for j := range centers {
				c := vec.New(in.Set.Dim())
				for d := range c {
					c[d] = rng.Uniform(lo[d], hi[d])
				}
				centers[j] = c
			}
			return centers, nil
		},
	}
}
