package core

import (
	"container/heap"
	"context"

	"repro/internal/obs"
	"repro/internal/reward"
)

// LazyGreedy is an accelerated drop-in replacement for LocalGreedy
// (Algorithm 2) using lazy marginal-gain evaluation (the CELF optimization
// for submodular greedy). Because a candidate's round gain
// Σ w_i·min([1−d/r]_+, y_i) can only shrink as residuals y decrease, the
// gain computed in an earlier round is a valid upper bound; candidates are
// kept in a max-heap keyed by their stale bounds and re-evaluated only when
// they reach the top. The selected centers, per-round gains, and tie-breaks
// are bit-identical to LocalGreedy; only the number of gain evaluations
// changes (often O(n log n)-ish total instead of O(kn²) at large n).
type LazyGreedy struct {
	// Obs receives per-round telemetry, including the number of stale
	// heap entries re-evaluated per round (obs.CtrLazyRepops) — the
	// number that quantifies how many evaluations laziness saved versus
	// LocalGreedy's n per round.
	Obs obs.Collector
}

// Name implements Algorithm. The name reflects equivalence to Algorithm 2.
func (LazyGreedy) Name() string { return "greedy2-lazy" }

// candEntry is a heap entry: a candidate index with the round gain bound
// computed at some past round.
type candEntry struct {
	idx   int
	bound float64
	round int // round the bound was computed in; fresh when == current
}

// candHeap orders by bound descending, then index ascending, matching the
// paper's lowest-index tie-break exactly.
type candHeap []candEntry

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(a, b int) bool {
	if h[a].bound != h[b].bound {
		return h[a].bound > h[b].bound
	}
	return h[a].idx < h[b].idx
}
func (h candHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *candHeap) Push(x interface{}) {
	*h = append(*h, x.(candEntry))
}
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run implements Algorithm.
func (a LazyGreedy) Run(ctx context.Context, in *reward.Instance, k int) (*Result, error) {
	if err := checkArgs(in, k); err != nil {
		return nil, err
	}
	ctx = orBG(ctx)
	n := in.N()
	y := in.NewResiduals()
	res := &Result{Algorithm: a.Name()}

	// Round 0: exact gains for every candidate.
	h := make(candHeap, 0, n)
	for i := 0; i < n; i++ {
		h = append(h, candEntry{idx: i, bound: in.RoundGain(in.Set.Point(i), y), round: 0})
	}
	heap.Init(&h)

	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return cancelRun(a.Obs, res, err)
		}
		rs := startRound(ctx, a.Obs, a.Name(), j+1)
		// Refresh stale tops until the best entry's bound is current for
		// this round; bounds only shrink, so once the top is fresh no
		// stale entry below can beat it. Heap refreshes are idempotent
		// reads of the residuals, so a mid-round cancellation can simply
		// abandon the half-refreshed heap and return the committed prefix.
		repops := 0
		for h[0].round != j {
			if err := ctx.Err(); err != nil {
				return cancelRun(a.Obs, res, err)
			}
			h[0].bound = in.RoundGain(in.Set.Point(h[0].idx), y)
			h[0].round = j
			heap.Fix(&h, 0)
			repops++
		}
		best := h[0]
		c := in.Set.Point(best.idx).Clone()
		gain, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c)
		res.Gains = append(res.Gains, gain)
		res.Total += gain
		// The chosen entry's bound is now stale for the next round; it is
		// refreshed like any other candidate when it resurfaces.
		if rs.active() {
			// Round 0 charges the n initial exact evaluations; later
			// rounds only the re-pops actually performed.
			evals := repops
			if j == 0 {
				evals += n
			}
			rs.c.Count(obs.CtrLazyRepops, int64(repops))
			rs.c.Count(obs.CtrCandidates, int64(evals))
			rs.end(gain, map[string]float64{
				"repops":     float64(repops),
				"candidates": float64(evals),
			})
		}
	}
	return res, nil
}

var _ Algorithm = LazyGreedy{}
