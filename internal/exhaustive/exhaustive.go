// Package exhaustive computes the paper's "exhaustive reward" baseline: the
// exact maximum of the objective f(C) (Eq. 7) over all k-subsets of a finite
// candidate set. The candidate set is the n data points, optionally enriched
// with a uniform lattice over the region, and each selected center can
// optionally be polished by continuous coordinate ascent. The search
// precomputes the candidate-by-point coverage matrix and enumerates subsets
// in parallel, partitioned by the first chosen index.
package exhaustive

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/parallel"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/solver"
	"repro/internal/vec"
)

// Options configures the baseline search: GridPer enriches the candidate
// set with a uniform lattice, Box bounds it (zero = data bounds), Polish
// refines the winning subset by block coordinate ascent, DisablePrune turns
// off branch-and-bound pruning, and Workers bounds the enumeration
// parallelism.
//
// Deprecated: Options is an alias for solver.Options — the one options
// surface every solver entry point (registry constructors, this baseline,
// the serving layer's wire schema) shares. New code should use
// solver.Options directly; the alias keeps the historical spelling
// compiling.
type Options = solver.Options

// Name is the baseline's identifier in the solver registry: Solve is also
// reachable as solver.New("exhaustive", opts), with the exhaustive-specific
// knobs (GridPer, Box, Polish, DisablePrune) read from the same unified
// Options the greedy constructors take.
const Name = "exhaustive"

func init() {
	if err := solver.Register(solver.Entry{
		Name:    Name,
		Summary: "exact baseline: best k-subset of the candidate set (optionally lattice-enriched and polished)",
		New: func(o solver.Options) core.Algorithm {
			return algorithm{opt: o}
		},
	}); err != nil {
		panic(err)
	}
}

// algorithm adapts Solve to the core.Algorithm interface so the baseline is
// a first-class catalog entry. The options are captured at construction;
// WarmStart and Obs wrapping are applied by solver.New like for any other
// entry.
type algorithm struct{ opt Options }

// Name implements core.Algorithm.
func (algorithm) Name() string { return Name }

// Run implements core.Algorithm by delegating to Solve.
func (a algorithm) Run(ctx context.Context, in *reward.Instance, k int) (*core.Result, error) {
	return Solve(ctx, in, k, a.opt)
}

// Solve returns the best center set found. The returned Result's Gains are
// the per-round gains obtained by committing the centers in order, so
// Total equals the objective value f(C*).
//
// Solve is anytime under cancellation: the enumeration checks ctx at
// combination-prefix granularity (every extension of a partial subset), so
// a cancelled call stops within one prefix step per worker and returns the
// best complete k-subset found so far — committed into a validating Result
// (possibly empty when cancellation precedes the first complete subset) —
// together with ctx.Err(). Polishing is skipped on cancellation. A nil ctx
// behaves like context.Background().
func Solve(ctx context.Context, in *reward.Instance, k int, opt Options) (*core.Result, error) {
	if in == nil {
		return nil, errors.New("exhaustive: nil instance")
	}
	if k <= 0 {
		return nil, fmt.Errorf("exhaustive: k = %d must be positive", k)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cands, err := candidates(in, opt)
	if err != nil {
		return nil, err
	}
	if k > len(cands) {
		return nil, fmt.Errorf("exhaustive: k = %d exceeds %d candidates", k, len(cands))
	}
	n := in.N()

	// Coverage matrix: cov[c][i] = [1 − d(cand_c, x_i)/r]_+.
	cov := make([][]float64, len(cands))
	if cerr := parallel.ForCtx(ctx, len(cands), opt.Workers, func(c int) {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			row[i] = in.Coverage(cands[c], i)
		}
		cov[c] = row
	}); cerr != nil {
		// Cancelled during the precompute: no subset was evaluated yet, so
		// the best-so-far solution is the empty one.
		return cancelled(opt.Obs, &core.Result{Algorithm: Name}, cerr)
	}
	weights := in.Set.Weights()

	// Optimistic bound per candidate: its standalone weighted coverage is
	// the most any single slot can add (submodularity). suffixMax[c] is
	// the best standalone gain among candidates >= c, enabling an early
	// break in the ascending-index enumeration.
	var suffixMax []float64
	if !opt.DisablePrune {
		suffixMax = make([]float64, len(cands)+1)
		for c := len(cands) - 1; c >= 0; c-- {
			var g float64
			for i := 0; i < n; i++ {
				g += weights[i] * cov[c][i]
			}
			suffixMax[c] = math.Max(g, suffixMax[c+1])
		}
	}

	// Parallel enumeration partitioned by the first chosen candidate. Each
	// partition keeps its own incumbent so a cancelled run can still merge
	// the complete subsets it managed to evaluate.
	done := ctx.Done()
	type partBest struct {
		val   float64
		combo []int
	}
	firsts := len(cands) - k + 1
	bests := make([]partBest, firsts)
	for i := range bests {
		bests[i].val = math.Inf(-1)
	}
	cancelErr := parallel.ForCtx(ctx, firsts, opt.Workers, func(first int) {
		b := partBest{val: math.Inf(-1)}
		combo := make([]int, k)
		combo[0] = first
		frac := make([]float64, n)
		copy(frac, cov[first])
		var val float64
		for i := 0; i < n; i++ {
			f := frac[i]
			if f > 1 {
				f = 1
			}
			val += weights[i] * f
		}
		enumerate(done, cov, weights, suffixMax, combo, 1, frac, val, &b.val, &b.combo)
		bests[first] = b
	})
	best := -1
	for i := 0; i < firsts; i++ {
		if bests[i].combo != nil && (best < 0 || bests[i].val > bests[best].val) {
			best = i
		}
	}
	if best < 0 {
		// Cancelled before any complete k-subset was scored.
		return cancelled(opt.Obs, &core.Result{Algorithm: Name}, cancelErr)
	}
	centers := make([]vec.V, k)
	for j, c := range bests[best].combo {
		centers[j] = cands[c].Clone()
	}

	if opt.Polish && cancelErr == nil {
		centers = polish(in, centers)
	}

	// Re-derive per-round gains by committing the centers in order.
	y := in.NewResiduals()
	res := &core.Result{Algorithm: Name}
	for _, c := range centers {
		g, _ := in.ApplyRound(c, y)
		res.Centers = append(res.Centers, c)
		res.Gains = append(res.Gains, g)
		res.Total += g
	}
	if cancelErr != nil {
		return cancelled(opt.Obs, res, cancelErr)
	}
	return res, nil
}

// cancelled finalizes an anytime early return, mirroring the greedy
// algorithms' lifecycle telemetry: the cancellation is counted and recorded
// as an obs.EvCancelled event carrying the committed-round count.
func cancelled(c obs.Collector, res *core.Result, err error) (*core.Result, error) {
	if obs.Active(c) {
		c.Count(obs.CtrCancelled, 1)
		c.Emit(obs.Event{Type: obs.EvCancelled, Alg: res.Algorithm, Round: len(res.Gains),
			Fields: map[string]float64{"rounds": float64(len(res.Gains))}})
	}
	return res, err
}

// enumerate recursively extends combo[:depth] with candidates having larger
// indices, carrying the accumulated per-point fraction sums and the partial
// objective value. With suffixMax non-nil it prunes: once the partial value
// plus (slots left)·(best remaining standalone gain) cannot beat the
// incumbent, the ascending-index loop can stop (suffixMax is non-increasing).
// A closed done channel stops the recursion at the next prefix extension,
// leaving the caller's incumbent as the partition's best-so-far.
func enumerate(done <-chan struct{}, cov [][]float64, weights, suffixMax []float64, combo []int, depth int, frac []float64, val float64, bestVal *float64, bestCombo *[]int) {
	k := len(combo)
	if depth == k {
		if val > *bestVal {
			*bestVal = val
			*bestCombo = append((*bestCombo)[:0], combo...)
		}
		return
	}
	n := len(frac)
	next := make([]float64, n)
	slotsLeft := float64(k - depth)
	for c := combo[depth-1] + 1; c <= len(cov)-(k-depth); c++ {
		select {
		case <-done:
			return
		default:
		}
		if suffixMax != nil && val+slotsLeft*suffixMax[c] <= *bestVal {
			return
		}
		row := cov[c]
		nv := val
		for i := 0; i < n; i++ {
			f0 := frac[i]
			f1 := f0 + row[i]
			next[i] = f1
			if f0 > 1 {
				f0 = 1
			}
			if f1 > 1 {
				f1 = 1
			}
			nv += weights[i] * (f1 - f0)
		}
		combo[depth] = c
		enumerate(done, cov, weights, suffixMax, combo, depth+1, next, nv, bestVal, bestCombo)
	}
}

// polish runs a few sweeps of block coordinate ascent: each center in turn
// is refined by compass search on the residual problem induced by freezing
// the others. The objective is non-decreasing throughout.
func polish(in *reward.Instance, centers []vec.V) []vec.V {
	cur := in.Objective(centers)
	for sweep := 0; sweep < 3; sweep++ {
		improved := false
		for j := range centers {
			// Residuals from all centers except j.
			y := in.NewResiduals()
			for jj, c := range centers {
				if jj != j {
					in.ApplyRound(c, y)
				}
			}
			nc, _ := optimize.CompassSearch(in, y, centers[j], in.Radius/2, in.Radius*1e-3)
			trial := centers[j]
			centers[j] = nc
			if v := in.Objective(centers); v > cur+1e-12 {
				cur = v
				improved = true
			} else {
				centers[j] = trial
			}
		}
		if !improved {
			break
		}
	}
	return centers
}

// candidates assembles the candidate centers: every data point plus the
// optional enrichment lattice.
func candidates(in *reward.Instance, opt Options) ([]vec.V, error) {
	cands := append([]vec.V{}, in.Set.Points()...)
	if opt.GridPer > 0 {
		box := opt.Box
		if !box.Valid() {
			lo, hi := in.Set.Bounds()
			box = pointset.Box{Lo: lo, Hi: hi}
		}
		if box.Dim() != in.Set.Dim() {
			return nil, fmt.Errorf("exhaustive: box dim %d != instance dim %d", box.Dim(), in.Set.Dim())
		}
		grid, err := pointset.GridPoints(box, opt.GridPer)
		if err != nil {
			return nil, err
		}
		cands = append(cands, grid...)
	}
	return cands, nil
}

// Combinations reports C(n, k) as a float64 (used by the CLI to warn before
// enormous enumerations).
func Combinations(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	v := 1.0
	for i := 0; i < k; i++ {
		v = v * float64(n-i) / float64(i+1)
	}
	return v
}
