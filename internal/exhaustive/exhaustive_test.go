package exhaustive

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func mustInstance(t *testing.T, pts []vec.V, ws []float64, n norm.Norm, r float64) *reward.Instance {
	t.Helper()
	set, err := pointset.New(pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, n, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func randomInstance(t *testing.T, rng *xrand.Rand, n int, nm norm.Norm, r float64) *reward.Instance {
	t.Helper()
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	return mustInstance(t, pts, ws, nm, r)
}

func TestValidation(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(0, 0)}, []float64{1}, norm.L2{}, 1)
	if _, err := Solve(context.Background(), nil, 1, Options{}); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := Solve(context.Background(), in, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Solve(context.Background(), in, 5, Options{}); err == nil {
		t.Error("k > candidates accepted")
	}
	if _, err := Solve(context.Background(), in, 1, Options{GridPer: 3, Box: pointset.PaperBox3D()}); err == nil {
		t.Error("mismatched box accepted")
	}
}

// Against a brute-force reference on tiny instances, the parallel
// enumeration must return exactly the point-restricted optimum.
func TestMatchesBruteForce(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 40; trial++ {
		n := rng.IntRange(2, 9)
		in := randomInstance(t, rng, n, norm.L2{}, rng.Uniform(0.7, 2))
		k := rng.IntRange(1, 3)
		if k > n {
			k = n
		}
		res, err := Solve(context.Background(), in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(in, k)
		if math.Abs(res.Total-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: exhaustive %v != brute force %v", trial, res.Total, want)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		if obj := in.Objective(res.Centers); math.Abs(obj-res.Total) > 1e-9*(1+obj) {
			t.Fatalf("objective %v != total %v", obj, res.Total)
		}
	}
}

func bruteForce(in *reward.Instance, k int) float64 {
	n := in.N()
	best := math.Inf(-1)
	combo := make([]int, k)
	var rec func(depth, start int)
	rec = func(depth, start int) {
		if depth == k {
			cs := make([]vec.V, k)
			for j, i := range combo {
				cs[j] = in.Set.Point(i)
			}
			if v := in.Objective(cs); v > best {
				best = v
			}
			return
		}
		for i := start; i < n; i++ {
			combo[depth] = i
			rec(depth+1, i+1)
		}
	}
	rec(0, 0)
	return best
}

// The baseline must dominate every greedy algorithm on point-restricted
// candidate sets (greedy2/greedy3 pick centers among the points).
func TestDominatesPointRestrictedGreedy(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(t, rng, rng.IntRange(5, 14), norm.L2{}, rng.Uniform(0.7, 2))
		k := rng.IntRange(1, 3)
		ex, err := Solve(context.Background(), in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range []core.Algorithm{core.LocalGreedy{}, core.SimpleGreedy{}} {
			g, err := a.Run(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			if g.Total > ex.Total+1e-9 {
				t.Fatalf("trial %d: %s %v beats exhaustive %v", trial, a.Name(), g.Total, ex.Total)
			}
		}
	}
}

func TestGridEnrichmentNeverHurts(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(t, rng, 8, norm.L2{}, 1.2)
		plain, err := Solve(context.Background(), in, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		enriched, err := Solve(context.Background(), in, 2, Options{GridPer: 5})
		if err != nil {
			t.Fatal(err)
		}
		if enriched.Total < plain.Total-1e-9 {
			t.Fatalf("trial %d: enriched %v < plain %v", trial, enriched.Total, plain.Total)
		}
	}
}

func TestPolishNeverHurts(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(t, rng, 8, norm.L2{}, 1.2)
		plain, err := Solve(context.Background(), in, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		polished, err := Solve(context.Background(), in, 2, Options{Polish: true})
		if err != nil {
			t.Fatal(err)
		}
		if polished.Total < plain.Total-1e-9 {
			t.Fatalf("trial %d: polish %v < plain %v", trial, polished.Total, plain.Total)
		}
	}
}

func TestPolishBeatsPointsOnSquare(t *testing.T) {
	pts := []vec.V{vec.Of(0, 0), vec.Of(0.8, 0), vec.Of(0, 0.8), vec.Of(0.8, 0.8)}
	in := mustInstance(t, pts, []float64{1, 1, 1, 1}, norm.L2{}, 1)
	plain, err := Solve(context.Background(), in, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := Solve(context.Background(), in, 1, Options{Polish: true})
	if err != nil {
		t.Fatal(err)
	}
	if polished.Total <= plain.Total {
		t.Fatalf("polish %v did not improve on plain %v", polished.Total, plain.Total)
	}
	if polished.Total < 1.7 {
		t.Fatalf("polish total = %v, want ≈ 1.736", polished.Total)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	rng := xrand.New(17)
	in := randomInstance(t, rng, 12, norm.L1{}, 1.5)
	a, err := Solve(context.Background(), in, 3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), in, 3, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Total-b.Total) > 1e-12 {
		t.Fatalf("worker counts disagree: %v vs %v", a.Total, b.Total)
	}
}

// Branch-and-bound pruning must never change the optimum.
func TestPruneEquivalence(t *testing.T) {
	rng := xrand.New(149)
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, rng, rng.IntRange(4, 14), norm.L2{}, rng.Uniform(0.6, 2))
		k := rng.IntRange(1, 3)
		pruned, err := Solve(context.Background(), in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Solve(context.Background(), in, k, Options{DisablePrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pruned.Total-plain.Total) > 1e-9*(1+plain.Total) {
			t.Fatalf("trial %d: pruned %v != plain %v", trial, pruned.Total, plain.Total)
		}
	}
}

func BenchmarkSolvePruned(b *testing.B) {
	in := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), in, 4, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveUnpruned(b *testing.B) {
	in := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), in, 4, Options{Workers: 1, DisablePrune: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchInstance(b *testing.B) *reward.Instance {
	b.Helper()
	rng := xrand.New(42)
	pts := make([]vec.V, 40)
	ws := make([]float64, 40)
	for i := range pts {
		pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
		ws[i] = float64(rng.IntRange(1, 5))
	}
	set, err := pointset.New(pts, ws)
	if err != nil {
		b.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func TestCombinations(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {40, 4, 91390}, {3, 0, 1}, {3, 4, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := Combinations(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestKEqualsCandidateCount(t *testing.T) {
	in := mustInstance(t, []vec.V{vec.Of(0, 0), vec.Of(2, 2)}, []float64{1, 2}, norm.L2{}, 1)
	res, err := Solve(context.Background(), in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Total-3) > 1e-9 {
		t.Fatalf("total = %v, want 3", res.Total)
	}
}

// TestCancellationAnytime covers the three cancellation regimes of Solve's
// anytime contract: a dead context before any work, cancellation mid-
// enumeration, and the invariant that whatever prefix comes back validates
// and never beats the true optimum.
func TestCancellationAnytime(t *testing.T) {
	rng := xrand.New(31)
	in := randomInstance(t, rng, 24, norm.L2{}, 1.5)

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := Solve(ctx, in, 2, Options{Workers: 2})
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res == nil || len(res.Centers) != 0 {
			t.Fatalf("pre-cancelled Solve = %+v, want an empty result", res)
		}
		if verr := res.Validate(); verr != nil {
			t.Fatalf("empty result invalid: %v", verr)
		}
	})

	t.Run("mid-enumeration", func(t *testing.T) {
		full, err := Solve(context.Background(), in, 3, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		// A large unpruned search on a bigger instance, cancelled almost
		// immediately: the result must be a valid best-so-far (possibly
		// empty) never exceeding the optimum of its own instance.
		big := randomInstance(t, rng, 90, norm.L2{}, 1.5)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		defer cancel()
		res, err := Solve(ctx, big, 3, Options{Workers: 2, DisablePrune: true})
		if err == nil {
			t.Skip("enumeration finished before the deadline on this machine")
		}
		if err != context.DeadlineExceeded {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
		if res == nil {
			t.Fatal("cancelled Solve returned a nil result")
		}
		if verr := res.Validate(); verr != nil {
			t.Fatalf("partial result invalid: %v", verr)
		}
		if len(res.Centers) != 0 && len(res.Centers) != 3 {
			t.Fatalf("partial result has %d centers, want 0 or k", len(res.Centers))
		}
		// Sanity on the small instance's uncancelled optimum: committing the
		// winning subset reproduces its own total.
		if verr := full.Validate(); verr != nil {
			t.Fatalf("uncancelled result invalid: %v", verr)
		}
	})

	t.Run("polish-skipped-on-cancel", func(t *testing.T) {
		// With the context cancelled during enumeration, Polish must not
		// run (it would burn time after the deadline); the result still
		// validates. Triggered via an instant deadline.
		ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
		defer cancel()
		res, err := Solve(ctx, in, 2, Options{Workers: 1, Polish: true})
		if err == nil {
			t.Skip("solve finished before a 1ns deadline")
		}
		if verr := res.Validate(); verr != nil {
			t.Fatalf("result invalid: %v", verr)
		}
	})
}
