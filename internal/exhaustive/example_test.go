package exhaustive_test

import (
	"context"
	"fmt"

	"repro/internal/exhaustive"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/vec"
)

// The exhaustive baseline enumerates every k-subset of candidate centers
// exactly — the denominator of the paper's approximation ratios. Two
// separated pairs with k = 2 are solved by centering on each pair.
func ExampleSolve() {
	users, _ := pointset.UnitWeights([]vec.V{
		vec.Of(0, 0), vec.Of(0.2, 0),
		vec.Of(3, 3), vec.Of(3.2, 3),
	})
	in, _ := reward.NewInstance(users, norm.L2{}, 1)
	res, _ := exhaustive.Solve(context.Background(), in, 2, exhaustive.Options{})
	fmt.Printf("optimum %.1f of %.1f achievable\n", res.Total, users.TotalWeight())
	fmt.Println("subsets enumerated:", exhaustive.Combinations(4, 2))
	// Output:
	// optimum 3.6 of 4.0 achievable
	// subsets enumerated: 6
}
