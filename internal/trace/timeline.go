package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/xrand"
)

// Timeline is a sequence of population snapshots, one per broadcast period —
// a recorded trace that can be replayed deterministically through the
// broadcast simulator (or any consumer), decoupling workload generation from
// scheduling the way real trace-driven evaluation does.
type Timeline struct {
	Snapshots []*Trace `json:"snapshots"`
}

// Validate checks that the timeline is non-empty and every snapshot is a
// valid trace over the same region and dimension.
func (tl *Timeline) Validate() error {
	if len(tl.Snapshots) == 0 {
		return errors.New("trace: empty timeline")
	}
	base := tl.Snapshots[0]
	if err := base.Validate(); err != nil {
		return fmt.Errorf("trace: timeline snapshot 0: %w", err)
	}
	for i, tr := range tl.Snapshots[1:] {
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("trace: timeline snapshot %d: %w", i+1, err)
		}
		if tr.Dim != base.Dim {
			return fmt.Errorf("trace: timeline snapshot %d dim %d != %d", i+1, tr.Dim, base.Dim)
		}
		for d := 0; d < base.Dim; d++ {
			if tr.Lo[d] != base.Lo[d] || tr.Hi[d] != base.Hi[d] {
				return fmt.Errorf("trace: timeline snapshot %d has different bounds", i+1)
			}
		}
	}
	return nil
}

// Periods reports the number of snapshots.
func (tl *Timeline) Periods() int { return len(tl.Snapshots) }

// RecordTimeline evolves an initial population for the given number of
// periods under Gaussian interest drift, storing an independent snapshot per
// period. The initial trace is snapshot 0 and is not modified.
func RecordTimeline(initial *Trace, periods int, driftSigma float64, rng *xrand.Rand) (*Timeline, error) {
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if periods <= 0 {
		return nil, fmt.Errorf("trace: periods = %d", periods)
	}
	if driftSigma < 0 {
		return nil, fmt.Errorf("trace: drift sigma = %v", driftSigma)
	}
	cur := cloneTrace(initial)
	tl := &Timeline{}
	for p := 0; p < periods; p++ {
		tl.Snapshots = append(tl.Snapshots, cloneTrace(cur))
		if p == periods-1 {
			break
		}
		if driftSigma > 0 {
			if err := Drift(cur, driftSigma, rng); err != nil {
				return nil, err
			}
		}
	}
	return tl, nil
}

func cloneTrace(tr *Trace) *Trace {
	cp := &Trace{Dim: tr.Dim, Lo: append([]float64{}, tr.Lo...), Hi: append([]float64{}, tr.Hi...)}
	cp.Users = make([]User, len(tr.Users))
	for i, u := range tr.Users {
		cp.Users[i] = User{ID: u.ID, Interest: append([]float64{}, u.Interest...), Weight: u.Weight}
	}
	return cp
}

// WriteJSON serializes the timeline.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}

// ReadTimelineJSON parses and validates a timeline.
func ReadTimelineJSON(r io.Reader) (*Timeline, error) {
	var tl Timeline
	if err := json.NewDecoder(r).Decode(&tl); err != nil {
		return nil, fmt.Errorf("trace: timeline decode: %w", err)
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	return &tl, nil
}
