package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON: arbitrary bytes must never panic the parser, and anything
// it accepts must re-serialize and re-parse to the same population.
func FuzzReadJSON(f *testing.F) {
	valid := `{"dim":2,"lo":[0,0],"hi":[4,4],"users":[{"id":0,"interest":[1,2],"weight":3}]}`
	f.Add(valid)
	f.Add(`{"dim":0}`)
	f.Add(`{"dim":2,"lo":[0],"hi":[4,4],"users":[]}`)
	f.Add(`not json at all`)
	f.Add(`{"dim":2,"lo":[0,0],"hi":[4,4],"keywords":["a"],"users":[{"id":0,"interest":[1,2],"weight":1}]}`)
	f.Add(`{"dim":1,"lo":[0],"hi":[1],"users":[{"id":0,"interest":[0.5],"weight":1e309}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must round-trip losslessly.
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if len(back.Users) != len(tr.Users) || back.Dim != tr.Dim {
			t.Fatal("round-trip changed the population")
		}
	})
}

// FuzzReadCSV: arbitrary CSV bytes must never panic, and accepted traces
// must convert to valid point sets.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,weight,x0,x1\n0,1,2,3\n")
	f.Add("id,weight,x0\nnot-an-int,1,2\n")
	f.Add("id,weight\n")
	f.Add(",,,,\n,,,,\n")
	f.Add("id,weight,x0\n0,NaN,1\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if _, err := tr.ToSet(); err != nil {
			t.Fatalf("accepted CSV produced invalid set: %v", err)
		}
	})
}
