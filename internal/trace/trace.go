// Package trace generates and serializes the synthetic interest traces the
// paper evaluates on ("we evaluate the algorithms in synthetic traces",
// §I/§VI). A trace holds a user population in interest space; generators
// cover the paper's uniform workload plus clustered and Zipf-topic
// populations the broadcast substrate uses. Traces round-trip through JSON
// and CSV so the CLIs can pipeline them.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/pointset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// User is one trace participant: an interest point with a maximum reward.
type User struct {
	ID       int       `json:"id"`
	Interest []float64 `json:"interest"`
	Weight   float64   `json:"weight"`
}

// Trace is a user population over a named region. Keywords optionally name
// the interest dimensions — the paper represents contents and interests as
// "m keywords in m-D space" (§I), so axis 0 might be "genre" and axis 1
// "tempo"; when present there must be exactly one keyword per dimension.
type Trace struct {
	Dim      int       `json:"dim"`
	Lo       []float64 `json:"lo"`
	Hi       []float64 `json:"hi"`
	Keywords []string  `json:"keywords,omitempty"`
	Users    []User    `json:"users"`
}

// Validate checks structural consistency.
func (tr *Trace) Validate() error {
	if tr.Dim <= 0 {
		return fmt.Errorf("trace: dim = %d", tr.Dim)
	}
	if len(tr.Lo) != tr.Dim || len(tr.Hi) != tr.Dim {
		return fmt.Errorf("trace: bounds dim mismatch (lo=%d hi=%d dim=%d)", len(tr.Lo), len(tr.Hi), tr.Dim)
	}
	if len(tr.Keywords) != 0 && len(tr.Keywords) != tr.Dim {
		return fmt.Errorf("trace: %d keywords for %d dimensions", len(tr.Keywords), tr.Dim)
	}
	for i, kw := range tr.Keywords {
		if kw == "" {
			return fmt.Errorf("trace: keyword %d is empty", i)
		}
	}
	if len(tr.Users) == 0 {
		return errors.New("trace: no users")
	}
	for i, u := range tr.Users {
		if len(u.Interest) != tr.Dim {
			return fmt.Errorf("trace: user %d has %d-dim interest, want %d", i, len(u.Interest), tr.Dim)
		}
		if u.Weight < 0 || math.IsNaN(u.Weight) || math.IsInf(u.Weight, 0) {
			return fmt.Errorf("trace: user %d weight %v invalid", i, u.Weight)
		}
	}
	return nil
}

// Box returns the trace region.
func (tr *Trace) Box() pointset.Box {
	return pointset.Box{Lo: vec.Of(tr.Lo...), Hi: vec.Of(tr.Hi...)}
}

// ToSet converts the trace to the point set the algorithms consume.
func (tr *Trace) ToSet() (*pointset.Set, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	pts := make([]vec.V, len(tr.Users))
	ws := make([]float64, len(tr.Users))
	for i, u := range tr.Users {
		pts[i] = vec.Of(u.Interest...)
		ws[i] = u.Weight
	}
	return pointset.New(pts, ws)
}

// FromSet builds a trace from a point set over the given box.
func FromSet(set *pointset.Set, box pointset.Box) (*Trace, error) {
	if set == nil {
		return nil, errors.New("trace: nil set")
	}
	if !box.Valid() || box.Dim() != set.Dim() {
		return nil, fmt.Errorf("trace: invalid box for dim %d", set.Dim())
	}
	tr := &Trace{Dim: set.Dim(), Lo: append([]float64{}, box.Lo...), Hi: append([]float64{}, box.Hi...)}
	for i := 0; i < set.Len(); i++ {
		tr.Users = append(tr.Users, User{
			ID:       i,
			Interest: append([]float64{}, set.Point(i)...),
			Weight:   set.Weight(i),
		})
	}
	return tr, nil
}

// Kind selects a population generator.
type Kind int

const (
	// Uniform scatters users uniformly — the paper's workload.
	Uniform Kind = iota
	// Clustered scatters users around uniformly placed Gaussian communities.
	Clustered
	// ZipfTopics scatters users around topic centers whose popularity
	// follows a Zipf law: a few mainstream topics dominate.
	ZipfTopics
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case ZipfTopics:
		return "zipf"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a generator name.
func KindByName(s string) (Kind, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "clustered":
		return Clustered, nil
	case "zipf":
		return ZipfTopics, nil
	default:
		return 0, fmt.Errorf("trace: unknown kind %q", s)
	}
}

// Config parameterizes Generate.
type Config struct {
	N      int
	Box    pointset.Box
	Kind   Kind
	Scheme pointset.WeightScheme
	// Topics is the community/topic count for Clustered and ZipfTopics
	// (default 5).
	Topics int
	// Sigma is the within-community spread (default 0.3).
	Sigma float64
	// ZipfS is the topic-popularity exponent for ZipfTopics (default 1).
	ZipfS float64
}

// Generate draws a trace from the configured population model.
func Generate(cfg Config, rng *xrand.Rand) (*Trace, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("trace: n = %d", cfg.N)
	}
	if !cfg.Box.Valid() {
		return nil, errors.New("trace: invalid box")
	}
	topics := cfg.Topics
	if topics <= 0 {
		topics = 5
	}
	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = 0.3
	}
	zs := cfg.ZipfS
	if zs <= 0 {
		zs = 1
	}

	var set *pointset.Set
	var err error
	switch cfg.Kind {
	case Uniform:
		set, err = pointset.GenUniform(cfg.N, cfg.Box, cfg.Scheme, rng)
	case Clustered:
		set, err = pointset.GenClustered(cfg.N, topics, sigma, cfg.Box, cfg.Scheme, rng)
	case ZipfTopics:
		set, err = genZipf(cfg.N, topics, sigma, zs, cfg.Box, cfg.Scheme, rng)
	default:
		return nil, fmt.Errorf("trace: unknown kind %v", cfg.Kind)
	}
	if err != nil {
		return nil, err
	}
	return FromSet(set, cfg.Box)
}

func genZipf(n, topics int, sigma, zipfS float64, box pointset.Box, scheme pointset.WeightScheme, rng *xrand.Rand) (*pointset.Set, error) {
	centers := make([]vec.V, topics)
	for i := range centers {
		centers[i] = box.Sample(rng)
	}
	z := xrand.NewZipf(topics, zipfS)
	pts := make([]vec.V, n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		ctr := centers[z.Rank(rng)-1]
		p := vec.New(box.Dim())
		for d := range p {
			x := ctr[d] + sigma*rng.NormFloat64()
			p[d] = math.Min(math.Max(x, box.Lo[d]), box.Hi[d])
		}
		pts[i] = p
		switch scheme {
		case pointset.UnitWeight:
			ws[i] = 1
		case pointset.RandomIntWeight:
			ws[i] = float64(rng.IntRange(1, 5))
		default:
			return nil, fmt.Errorf("trace: unknown weight scheme %v", scheme)
		}
	}
	return pointset.New(pts, ws)
}

// Drift perturbs every user's interest by a Gaussian step of scale sigma,
// reflecting at the box boundary. It models interests slowly evolving
// between broadcast periods in the substrate simulator.
func Drift(tr *Trace, sigma float64, rng *xrand.Rand) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	if sigma < 0 {
		return fmt.Errorf("trace: negative drift sigma %v", sigma)
	}
	for ui := range tr.Users {
		for d := 0; d < tr.Dim; d++ {
			x := tr.Users[ui].Interest[d] + sigma*rng.NormFloat64()
			lo, hi := tr.Lo[d], tr.Hi[d]
			// Reflect into [lo, hi].
			for x < lo || x > hi {
				if x < lo {
					x = 2*lo - x
				}
				if x > hi {
					x = 2*hi - x
				}
			}
			tr.Users[ui].Interest[d] = x
		}
	}
	return nil
}

// WriteJSON serializes the trace with indentation.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadJSON parses and validates a trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// WriteCSV emits "id,weight,x0,x1,..." rows with a header.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"id", "weight"}
	for d := 0; d < tr.Dim; d++ {
		header = append(header, fmt.Sprintf("x%d", d))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, u := range tr.Users {
		row := []string{strconv.Itoa(u.ID), strconv.FormatFloat(u.Weight, 'g', -1, 64)}
		for _, x := range u.Interest {
			row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses rows written by WriteCSV. The region bounds are recomputed
// from the data (CSV does not carry them).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, errors.New("trace: csv has no data rows")
	}
	dim := len(rows[0]) - 2
	if dim <= 0 {
		return nil, fmt.Errorf("trace: csv header %v has no coordinates", rows[0])
	}
	tr := &Trace{Dim: dim}
	for _, row := range rows[1:] {
		if len(row) != dim+2 {
			return nil, fmt.Errorf("trace: csv row has %d fields, want %d", len(row), dim+2)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: csv id %q: %w", row[0], err)
		}
		w, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv weight %q: %w", row[1], err)
		}
		interest := make([]float64, dim)
		for d := 0; d < dim; d++ {
			interest[d], err = strconv.ParseFloat(row[2+d], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: csv coord %q: %w", row[2+d], err)
			}
		}
		tr.Users = append(tr.Users, User{ID: id, Interest: interest, Weight: w})
	}
	// Recompute bounds.
	lo := append([]float64{}, tr.Users[0].Interest...)
	hi := append([]float64{}, tr.Users[0].Interest...)
	for _, u := range tr.Users[1:] {
		for d, x := range u.Interest {
			if x < lo[d] {
				lo[d] = x
			}
			if x > hi[d] {
				hi[d] = x
			}
		}
	}
	// Widen degenerate bounds so Box stays valid.
	for d := range lo {
		if lo[d] == hi[d] {
			hi[d] = lo[d] + 1e-9
		}
	}
	tr.Lo, tr.Hi = lo, hi
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
