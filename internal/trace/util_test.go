package trace

import (
	"testing"

	"repro/internal/pointset"
	"repro/internal/xrand"
)

func TestMerge(t *testing.T) {
	a := genValid(t, Uniform)
	b := genValid(t, Clustered)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Users) != len(a.Users)+len(b.Users) {
		t.Fatalf("merged %d users, want %d", len(m.Users), len(a.Users)+len(b.Users))
	}
	seen := map[int]bool{}
	for _, u := range m.Users {
		if seen[u.ID] {
			t.Fatalf("duplicate id %d after merge", u.ID)
		}
		seen[u.ID] = true
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRejects(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	a := genValid(t, Uniform)
	threeD, err := Generate(Config{N: 5, Box: pointset.PaperBox3D(), Kind: Uniform,
		Scheme: pointset.UnitWeight}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, threeD); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestFilter(t *testing.T) {
	tr := genValid(t, Uniform)
	heavy, err := tr.Filter(func(u User) bool { return u.Weight >= 3 })
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range heavy.Users {
		if u.Weight < 3 {
			t.Fatalf("filter kept weight %v", u.Weight)
		}
	}
	if len(heavy.Users) >= len(tr.Users) {
		t.Error("filter removed nothing")
	}
	if _, err := tr.Filter(func(User) bool { return false }); err == nil {
		t.Error("empty filter result accepted")
	}
	// Filter must deep-copy: mutating the filtered trace leaves the
	// original intact.
	heavy.Users[0].Interest[0] = -99
	for _, u := range tr.Users {
		if u.Interest[0] == -99 {
			t.Fatal("filter aliased user storage")
		}
	}
}

func TestSample(t *testing.T) {
	tr := genValid(t, Uniform)
	s, err := tr.Sample(10, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Users) != 10 {
		t.Fatalf("sample size %d", len(s.Users))
	}
	seen := map[int]bool{}
	for _, u := range s.Users {
		if seen[u.ID] {
			t.Fatal("sample drew a user twice")
		}
		seen[u.ID] = true
	}
	if _, err := tr.Sample(0, xrand.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := tr.Sample(len(tr.Users)+1, xrand.New(1)); err == nil {
		t.Error("oversample accepted")
	}
	// Determinism.
	s2, err := tr.Sample(10, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Users {
		if s.Users[i].ID != s2.Users[i].ID {
			t.Fatal("sampling not deterministic per seed")
		}
	}
}

func TestTotalWeight(t *testing.T) {
	tr := genValid(t, Uniform)
	var want float64
	for _, u := range tr.Users {
		want += u.Weight
	}
	if got := tr.TotalWeight(); got != want {
		t.Fatalf("TotalWeight = %v, want %v", got, want)
	}
}
