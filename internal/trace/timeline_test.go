package trace

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

func TestRecordTimeline(t *testing.T) {
	tr := genValid(t, Uniform)
	tl, err := RecordTimeline(tr, 5, 0.2, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Periods() != 5 {
		t.Fatalf("periods = %d", tl.Periods())
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Snapshot 0 equals the initial population; later snapshots drift.
	for i, u := range tl.Snapshots[0].Users {
		if u.Interest[0] != tr.Users[i].Interest[0] {
			t.Fatal("snapshot 0 differs from initial trace")
		}
	}
	moved := false
	for i, u := range tl.Snapshots[4].Users {
		if u.Interest[0] != tr.Users[i].Interest[0] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("no drift across the timeline")
	}
	// Snapshots are independent copies.
	tl.Snapshots[1].Users[0].Interest[0] = -99
	if tl.Snapshots[2].Users[0].Interest[0] == -99 || tr.Users[0].Interest[0] == -99 {
		t.Fatal("snapshots share storage")
	}
}

func TestRecordTimelineValidation(t *testing.T) {
	tr := genValid(t, Uniform)
	if _, err := RecordTimeline(tr, 0, 0.1, xrand.New(1)); err == nil {
		t.Error("periods=0 accepted")
	}
	if _, err := RecordTimeline(tr, 3, -1, xrand.New(1)); err == nil {
		t.Error("negative drift accepted")
	}
	bad := &Trace{Dim: 2}
	if _, err := RecordTimeline(bad, 3, 0.1, xrand.New(1)); err == nil {
		t.Error("invalid initial trace accepted")
	}
}

func TestTimelineJSONRoundTrip(t *testing.T) {
	tr := genValid(t, Clustered)
	tl, err := RecordTimeline(tr, 3, 0.15, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTimelineJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Periods() != 3 {
		t.Fatalf("periods lost: %d", back.Periods())
	}
	for p := range back.Snapshots {
		for i := range back.Snapshots[p].Users {
			if back.Snapshots[p].Users[i].Interest[0] != tl.Snapshots[p].Users[i].Interest[0] {
				t.Fatal("interests lost in round trip")
			}
		}
	}
}

func TestTimelineValidateRejects(t *testing.T) {
	if err := (&Timeline{}).Validate(); err == nil {
		t.Error("empty timeline accepted")
	}
	a := genValid(t, Uniform)
	threeD, err := Generate(Config{N: 5, Box: a.Box(), Kind: Uniform,
		Scheme: 0}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	threeD.Dim = 3 // corrupt
	tl := &Timeline{Snapshots: []*Trace{a, threeD}}
	if err := tl.Validate(); err == nil {
		t.Error("mismatched snapshot accepted")
	}
}
