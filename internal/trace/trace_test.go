package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/pointset"
	"repro/internal/xrand"
)

func genValid(t *testing.T, kind Kind) *Trace {
	t.Helper()
	tr, err := Generate(Config{
		N:      50,
		Box:    pointset.PaperBox2D(),
		Kind:   kind,
		Scheme: pointset.RandomIntWeight,
	}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []Kind{Uniform, Clustered, ZipfTopics} {
		tr := genValid(t, kind)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(tr.Users) != 50 || tr.Dim != 2 {
			t.Fatalf("%v: shape wrong", kind)
		}
		box := tr.Box()
		for _, u := range tr.Users {
			p := u.Interest
			if p[0] < box.Lo[0] || p[0] > box.Hi[0] || p[1] < box.Lo[1] || p[1] > box.Hi[1] {
				t.Fatalf("%v: user %v outside box", kind, u)
			}
			if u.Weight < 1 || u.Weight > 5 {
				t.Fatalf("%v: weight %v", kind, u.Weight)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := Generate(Config{N: 0, Box: pointset.PaperBox2D()}, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Generate(Config{N: 5}, rng); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := Generate(Config{N: 5, Box: pointset.PaperBox2D(), Kind: Kind(42)}, rng); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestZipfConcentration(t *testing.T) {
	// With a strong Zipf exponent, most users cluster near topic 1; the
	// population should be far more concentrated than uniform. Compare
	// mean nearest-neighbor style dispersion via coordinate variance.
	rng := xrand.New(9)
	zf, err := Generate(Config{N: 400, Box: pointset.PaperBox2D(), Kind: ZipfTopics,
		Scheme: pointset.UnitWeight, Topics: 10, Sigma: 0.1, ZipfS: 2.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	un, err := Generate(Config{N: 400, Box: pointset.PaperBox2D(), Kind: Uniform,
		Scheme: pointset.UnitWeight}, rng)
	if err != nil {
		t.Fatal(err)
	}
	varOf := func(tr *Trace) float64 {
		var mean, m2 float64
		for _, u := range tr.Users {
			mean += u.Interest[0]
		}
		mean /= float64(len(tr.Users))
		for _, u := range tr.Users {
			d := u.Interest[0] - mean
			m2 += d * d
		}
		return m2 / float64(len(tr.Users))
	}
	if varOf(zf) >= varOf(un) {
		t.Errorf("zipf variance %v not below uniform %v", varOf(zf), varOf(un))
	}
}

func TestToSetFromSetRoundTrip(t *testing.T) {
	tr := genValid(t, Uniform)
	set, err := tr.ToSet()
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 50 {
		t.Fatalf("set len = %d", set.Len())
	}
	back, err := FromSet(set, tr.Box())
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range back.Users {
		if u.Weight != tr.Users[i].Weight {
			t.Fatalf("weight %d changed", i)
		}
		for d := range u.Interest {
			if u.Interest[d] != tr.Users[i].Interest[d] {
				t.Fatalf("interest %d changed", i)
			}
		}
	}
	if _, err := FromSet(nil, tr.Box()); err == nil {
		t.Error("nil set accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := genValid(t, Clustered)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(tr.Users) || back.Dim != tr.Dim {
		t.Fatal("shape lost")
	}
	for i := range back.Users {
		if back.Users[i].Weight != tr.Users[i].Weight {
			t.Fatal("weights lost")
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad json accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"dim":2,"lo":[0,0],"hi":[4,4],"users":[]}`)); err == nil {
		t.Error("empty users accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"dim":2,"lo":[0,0],"hi":[4,4],"users":[{"id":0,"interest":[1],"weight":1}]}`)); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := genValid(t, Uniform)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,weight,x0,x1") {
		t.Fatalf("csv header wrong: %q", buf.String()[:30])
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(tr.Users) || back.Dim != 2 {
		t.Fatal("shape lost")
	}
	for i := range back.Users {
		if math.Abs(back.Users[i].Interest[0]-tr.Users[i].Interest[0]) > 1e-12 {
			t.Fatal("coords lost precision")
		}
	}
}

func TestReadCSVRejectsInvalid(t *testing.T) {
	cases := []string{
		"",
		"id,weight,x0\n",
		"id,weight\n1,2\n",
		"id,weight,x0\nabc,1,2\n",
		"id,weight,x0\n1,xx,2\n",
		"id,weight,x0\n1,1,yy\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestDrift(t *testing.T) {
	tr := genValid(t, Uniform)
	before := make([][]float64, len(tr.Users))
	for i, u := range tr.Users {
		before[i] = append([]float64{}, u.Interest...)
	}
	if err := Drift(tr, 0.2, xrand.New(5)); err != nil {
		t.Fatal(err)
	}
	box := tr.Box()
	moved := 0
	for i, u := range tr.Users {
		p := u.Interest
		if p[0] < box.Lo[0] || p[0] > box.Hi[0] || p[1] < box.Lo[1] || p[1] > box.Hi[1] {
			t.Fatalf("drifted user %d outside box: %v", i, p)
		}
		if p[0] != before[i][0] || p[1] != before[i][1] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no user moved under drift")
	}
	if err := Drift(tr, -0.1, xrand.New(5)); err == nil {
		t.Error("negative sigma accepted")
	}
	// Zero drift keeps everyone in place.
	snap := append([]float64{}, tr.Users[0].Interest...)
	if err := Drift(tr, 0, xrand.New(5)); err != nil {
		t.Fatal(err)
	}
	if tr.Users[0].Interest[0] != snap[0] {
		t.Error("zero drift moved a user")
	}
}

func TestKindNames(t *testing.T) {
	for _, k := range []Kind{Uniform, Clustered, ZipfTopics} {
		parsed, err := KindByName(k.String())
		if err != nil || parsed != k {
			t.Errorf("round trip %v failed: %v %v", k, parsed, err)
		}
	}
	if _, err := KindByName("nope"); err == nil {
		t.Error("bad name accepted")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}
