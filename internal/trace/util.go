package trace

import (
	"errors"
	"fmt"

	"repro/internal/xrand"
)

// Merge combines several traces over the same region into one population.
// User IDs are renumbered to stay unique. It returns an error when the
// traces disagree in dimension or region bounds.
func Merge(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: merge of nothing")
	}
	base := traces[0]
	if err := base.Validate(); err != nil {
		return nil, err
	}
	out := &Trace{Dim: base.Dim, Lo: append([]float64{}, base.Lo...), Hi: append([]float64{}, base.Hi...)}
	id := 0
	for ti, tr := range traces {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("trace: merge input %d: %w", ti, err)
		}
		if tr.Dim != base.Dim {
			return nil, fmt.Errorf("trace: merge input %d has dim %d, want %d", ti, tr.Dim, base.Dim)
		}
		for d := 0; d < base.Dim; d++ {
			if tr.Lo[d] != base.Lo[d] || tr.Hi[d] != base.Hi[d] {
				return nil, fmt.Errorf("trace: merge input %d has different region bounds", ti)
			}
		}
		for _, u := range tr.Users {
			out.Users = append(out.Users, User{
				ID:       id,
				Interest: append([]float64{}, u.Interest...),
				Weight:   u.Weight,
			})
			id++
		}
	}
	return out, nil
}

// Filter returns a new trace keeping only users for which keep returns true.
// It returns an error if nothing survives (an empty trace is invalid).
func (tr *Trace) Filter(keep func(User) bool) (*Trace, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	out := &Trace{Dim: tr.Dim, Lo: append([]float64{}, tr.Lo...), Hi: append([]float64{}, tr.Hi...)}
	for _, u := range tr.Users {
		if keep(u) {
			out.Users = append(out.Users, User{
				ID:       u.ID,
				Interest: append([]float64{}, u.Interest...),
				Weight:   u.Weight,
			})
		}
	}
	if len(out.Users) == 0 {
		return nil, errors.New("trace: filter removed every user")
	}
	return out, nil
}

// Sample returns a new trace with n users drawn uniformly without
// replacement. It returns an error when n is out of range.
func (tr *Trace) Sample(n int, rng *xrand.Rand) (*Trace, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || n > len(tr.Users) {
		return nil, fmt.Errorf("trace: sample size %d out of range [1, %d]", n, len(tr.Users))
	}
	perm := rng.Perm(len(tr.Users))
	out := &Trace{Dim: tr.Dim, Lo: append([]float64{}, tr.Lo...), Hi: append([]float64{}, tr.Hi...)}
	for _, i := range perm[:n] {
		u := tr.Users[i]
		out.Users = append(out.Users, User{
			ID:       u.ID,
			Interest: append([]float64{}, u.Interest...),
			Weight:   u.Weight,
		})
	}
	return out, nil
}

// TotalWeight returns Σ w over the population.
func (tr *Trace) TotalWeight() float64 {
	var t float64
	for _, u := range tr.Users {
		t += u.Weight
	}
	return t
}
