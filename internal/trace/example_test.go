package trace_test

import (
	"bytes"
	"fmt"

	"repro/internal/pointset"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Generate a Zipf-topic population, filter to its heavy users, and
// round-trip through JSON.
func ExampleGenerate() {
	tr, _ := trace.Generate(trace.Config{
		N:      100,
		Box:    pointset.PaperBox2D(),
		Kind:   trace.ZipfTopics,
		Scheme: pointset.RandomIntWeight,
	}, xrand.New(8))
	heavy, _ := tr.Filter(func(u trace.User) bool { return u.Weight >= 4 })
	var buf bytes.Buffer
	_ = heavy.WriteJSON(&buf)
	back, _ := trace.ReadJSON(&buf)
	fmt.Println("all users:", len(tr.Users))
	fmt.Println("heavy survived round-trip:", len(back.Users) == len(heavy.Users))
	// Output:
	// all users: 100
	// heavy survived round-trip: true
}
