package experiments

import (
	"context"
	"sort"
	"strings"
	"testing"
)

func quickCfg() RunConfig {
	return RunConfig{Seed: 1, Quick: true}
}

func TestRegistryUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"fig2", "fig3", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "summary"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig2")
	if err != nil || e.ID != "fig2" {
		t.Fatalf("ByID(fig2) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil || !strings.Contains(err.Error(), "fig2") {
		t.Errorf("unknown id error should list valid ids: %v", err)
	}
}

func TestByIDUnknownListsSortedIDs(t *testing.T) {
	ids := make([]string, 0)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	_, err := ByID("nope")
	if err == nil {
		t.Fatal("ByID(nope) succeeded")
	}
	// The catalog is joined with " | ", the same canonical format
	// solver.CatalogError gives the solver registry's unknown-name error.
	if want := strings.Join(ids, " | "); !strings.Contains(err.Error(), want) {
		t.Errorf("unknown id error %q does not carry the sorted catalog %q", err, want)
	}
	if !strings.Contains(err.Error(), `experiments: unknown id "nope"`) {
		t.Errorf("unknown id error %q is not in the canonical catalog-error format", err)
	}
}

func TestFig2(t *testing.T) {
	out, err := RunFig2(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 || len(out.Tables) != 2 {
		t.Fatalf("fig2 artifacts: %d figures %d tables", len(out.Figures), len(out.Tables))
	}
	text := out.Render()
	for _, want := range []string{"fig2-n10", "fig2-n40", "approx1", "approx2"} {
		if !strings.Contains(text, want) {
			t.Errorf("fig2 output missing %q", want)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	out, err := RunTable1(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || out.Tables[0].NumRows() != 3 {
		t.Fatalf("table1 shape wrong")
	}
	text := out.Render()
	for _, want := range []string{"Greedy 2", "Greedy 3", "Greedy 4", "Total"} {
		if !strings.Contains(text, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestFig3RendersScatters(t *testing.T) {
	out, err := RunFig3(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	text := out.Render()
	// 12 panels: 4 rounds × 3 algorithms, labelled (a)..(l) like the paper.
	if got := strings.Count(text, "legend:"); got != 12 {
		t.Errorf("fig3 rendered %d panels, want 12", got)
	}
	for _, want := range []string{"Fig. 3(a)", "Fig. 3(l)", "after round 4"} {
		if !strings.Contains(text, want) {
			t.Errorf("fig3 missing %q", want)
		}
	}
	if !strings.Contains(text, "@") {
		t.Error("fig3 has no centers plotted")
	}
}

func TestRatioFigureQuick(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 { // n=10 and n=40 panels
		t.Fatalf("fig4 panels = %d", len(out.Figures))
	}
	for _, f := range out.Figures {
		if len(f.Series) != 6 { // 4 ratios + 2 bounds
			t.Fatalf("fig4 series = %d", len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.X) != 6 {
				t.Fatalf("series %q has %d points, want 6", s.Name, len(s.X))
			}
			if strings.HasPrefix(s.Name, "ratio ") {
				for i, y := range s.Y {
					if y <= 0 || y > 1.25 {
						t.Errorf("series %q point %d = %v outside plausible ratio range", s.Name, i, y)
					}
				}
			}
		}
	}
}

func TestRewardFigureQuick(t *testing.T) {
	e, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 || len(out.Tables) != 2 {
		t.Fatalf("fig9 artifacts wrong: %d figs %d tables", len(out.Figures), len(out.Tables))
	}
	for _, f := range out.Figures {
		for _, s := range f.Series {
			for i, y := range s.Y {
				if y < 0 {
					t.Errorf("negative reward in %q[%d]: %v", s.Name, i, y)
				}
			}
		}
	}
}

func TestSummaryQuick(t *testing.T) {
	out, err := RunSummary(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || out.Tables[0].NumRows() != 4 {
		t.Fatal("summary shape wrong")
	}
	text := out.Render()
	for _, want := range []string{"greedy1", "greedy2", "greedy3", "greedy4", "overall"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestTradeoffQuick(t *testing.T) {
	out, err := RunTradeoff(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || len(out.Figures) != 1 {
		t.Fatal("tradeoff artifacts wrong")
	}
	if out.Tables[0].NumRows() != 3 { // quick kMax = 3
		t.Errorf("tradeoff rows = %d", out.Tables[0].NumRows())
	}
}

func TestValidateQuick(t *testing.T) {
	out, err := RunValidate(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || out.Tables[0].NumRows() != 2 {
		t.Fatal("validate artifacts wrong")
	}
	text := out.Render()
	if !strings.Contains(text, "Theorem 2") || !strings.Contains(text, "Theorem 1") {
		t.Errorf("validate output wrong:\n%s", text)
	}
}

func TestAblationsQuick(t *testing.T) {
	for _, id := range []string{"ablation-exhaustive", "ablation-ballmode", "ablation-inner", "ablation-scale"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run(context.Background(), quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out.Tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
	}
}

func TestExtensionExperimentsQuick(t *testing.T) {
	for _, id := range []string{"multistation", "kcurve", "complexity", "baselines", "radiuscurve", "weightskew"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run(context.Background(), quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out.Tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
	}
}

func TestConfigGrid(t *testing.T) {
	g := configGrid()
	if len(g) != 6 {
		t.Fatalf("grid len = %d", len(g))
	}
	if g[0].String() != "k=2,r=1" || g[5].String() != "k=4,r=2" {
		t.Errorf("grid order wrong: %v .. %v", g[0], g[5])
	}
}

func TestRunConfigDefaults(t *testing.T) {
	if (RunConfig{}).trials() != 5 {
		t.Error("default trials != 5")
	}
	if (RunConfig{Quick: true}).trials() != 1 {
		t.Error("quick trials != 1")
	}
	if (RunConfig{Trials: 9}).trials() != 9 {
		t.Error("explicit trials ignored")
	}
	if (RunConfig{Quick: true}).exhaustiveGridPer(2) != 0 {
		t.Error("quick grid != 0")
	}
	if (RunConfig{}).exhaustiveGridPer(2) != 5 {
		t.Error("full grid != 5")
	}
	if (RunConfig{}).polish() != true || (RunConfig{Quick: true}).polish() != false {
		t.Error("polish defaults wrong")
	}
}
