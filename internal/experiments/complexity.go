package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RunComplexity empirically verifies the complexity claims of §V: greedy 3
// is O(kn) (Theorem 3), greedy 2 is O(kn²), and greedy 4 is O(kn³)
// (Theorem 4). Each algorithm is timed across a geometric sweep of n at
// fixed k, and the log-log slope of time against n estimates the exponent.
// Constant factors, cache effects, and greedy 4's early-stopping walks push
// the fitted exponents below the worst-case bounds; the invariant asserted
// here is exp(greedy3) < exp(greedy2), the separation Theorem 3 claims.
func RunComplexity(ctx context.Context, cfg RunConfig) (*Output, error) {
	sizes := []int{100, 200, 400, 800}
	reps := 3
	if cfg.Quick {
		sizes = []int{50, 100, 200}
		reps = 1
	}
	const k = 4
	algs := []core.Algorithm{
		core.SimpleGreedy{},
		core.LocalGreedy{Workers: 1},
		core.ComplexGreedy{Workers: 1},
	}
	rng := xrand.New(cfg.Seed ^ 0xc0de)

	tb := report.NewTable(fmt.Sprintf("runtime vs n (k=%d, 2-norm, r=0.8, 4x4 box, best of %d reps)", k, reps),
		"algorithm", "n", "time")
	fit := report.NewTable("fitted complexity exponents (log-log slope of time vs n)",
		"algorithm", "paper bound", "fitted exponent")
	bounds := map[string]string{"greedy3": "O(kn)", "greedy2": "O(kn^2)", "greedy4": "O(kn^3)"}

	exponents := map[string]float64{}
	for _, alg := range algs {
		var lx, ly []float64
		for _, n := range sizes {
			set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
			if err != nil {
				return nil, err
			}
			in, err := reward.NewInstance(set, norm.L2{}, 0.8)
			if err != nil {
				return nil, err
			}
			best := time.Duration(math.MaxInt64)
			for rep := 0; rep < reps; rep++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := alg.Run(ctx, in, k); err != nil {
					return nil, err
				}
				if el := time.Since(start); el < best {
					best = el
				}
			}
			tb.AddRow(alg.Name(), n, best.Round(10*time.Microsecond).String())
			lx = append(lx, math.Log(float64(n)))
			ly = append(ly, math.Log(float64(best.Nanoseconds())))
		}
		slope, _, err := stats.LinearFit(lx, ly)
		if err != nil {
			return nil, err
		}
		exponents[alg.Name()] = slope
		fit.AddRow(alg.Name(), bounds[alg.Name()], slope)
	}
	// Sanity of the ordering claim (skip in quick mode: one rep is noisy).
	if !cfg.Quick {
		if !(exponents["greedy3"] < exponents["greedy2"]) {
			return nil, fmt.Errorf("experiments: exponent ordering violated: greedy3 %.2f >= greedy2 %.2f",
				exponents["greedy3"], exponents["greedy2"])
		}
	}
	out := &Output{Tables: []*report.Table{tb, fit}}
	out.Notes = append(out.Notes,
		"Fitted exponents are effective (measured) growth rates, upper-bounded by the paper's worst-case",
		"claims. greedy3 stays near-linear and greedy2 tracks its n² bound closely; greedy4's walks",
		"terminate early on sparse instances, so its effective exponent falls well below 3 even though",
		"its absolute time dominates everything (the per-seed SEB walks carry a large constant).")
	return out, nil
}
