package experiments

import (
	"context"
	"strings"
	"testing"
)

// Full-fidelity shape assertions: run fig4 with real (non-quick) settings at
// reduced trial count and check the orderings EXPERIMENTS.md claims. This is
// the repository's own guard that the reproduction's qualitative claims
// survive refactoring.
func TestFig4FullShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure run skipped in -short mode")
	}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(context.Background(), RunConfig{Seed: 42, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range out.Figures {
		series := map[string][]float64{}
		for _, s := range fig.Series {
			series[s.Name] = s.Y
		}
		r2 := series["ratio greedy2"]
		r3 := series["ratio greedy3"]
		r4 := series["ratio greedy4"]
		a2 := series["approx2 (Thm 2)"]
		if r2 == nil || r3 == nil || r4 == nil || a2 == nil {
			t.Fatalf("%s: missing series", fig.ID)
		}
		mean := func(xs []float64) float64 {
			var s float64
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}
		// Theorem-2 floor: every cell of every algorithm stays far above.
		for i := range r2 {
			for _, r := range [][]float64{r2, r3, r4} {
				if r[i] <= a2[i] {
					t.Fatalf("%s cell %d: ratio %v at or below Theorem-2 bound %v", fig.ID, i, r[i], a2[i])
				}
			}
		}
		// Ordering on average: greedy4 >= greedy2 >= greedy3 (Table I's
		// operative claim).
		if !(mean(r4) >= mean(r2)-1e-9 && mean(r2) > mean(r3)) {
			t.Fatalf("%s: ordering violated: g4 %v g2 %v g3 %v", fig.ID, mean(r4), mean(r2), mean(r3))
		}
		// Ratios live in a sane band.
		for i := range r2 {
			if r2[i] <= 0.4 || r2[i] > 1+1e-9 {
				t.Fatalf("%s: implausible greedy2 ratio %v", fig.ID, r2[i])
			}
		}
	}
	if !strings.Contains(out.Render(), "approx2") {
		t.Error("rendered output missing reference bound")
	}
}

// Fig. 8's shape at full fidelity (no exhaustive baseline needed): rewards
// grow with the configuration index within each k block, and greedy2
// dominates greedy3 in every cell.
func TestFig8FullShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure run skipped in -short mode")
	}
	e, err := ByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(context.Background(), RunConfig{Seed: 42, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range out.Figures {
		series := map[string][]float64{}
		for _, s := range fig.Series {
			series[s.Name] = s.Y
		}
		g2 := series["reward greedy2"]
		g3 := series["reward greedy3"]
		if g2 == nil || g3 == nil {
			t.Fatalf("%s: missing series", fig.ID)
		}
		for i := range g2 {
			if g2[i] < g3[i]-1e-9 {
				t.Fatalf("%s cell %d: greedy2 %v below greedy3 %v", fig.ID, i, g2[i], g3[i])
			}
		}
		// Reward grows with radius within each k block (cells 0-2 and 3-5).
		for _, block := range [][2]int{{0, 2}, {3, 5}} {
			for i := block[0]; i < block[1]; i++ {
				if g2[i+1] < g2[i]-1e-9 {
					t.Fatalf("%s: reward fell from cell %d to %d: %v -> %v",
						fig.ID, i, i+1, g2[i], g2[i+1])
				}
			}
		}
	}
}

// Table I's shape at full fidelity: greedy4 >= greedy2 > greedy3 on totals,
// greedy2's per-round gains non-increasing.
func TestTable1FullShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table run skipped in -short mode")
	}
	r2, r3, r4, _, err := fig3Instance(context.Background(), RunConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !(r4.Total >= r2.Total-1e-9 && r2.Total > r3.Total) {
		t.Fatalf("Table I ordering violated: g4 %v g2 %v g3 %v", r4.Total, r2.Total, r3.Total)
	}
	for j := 1; j < len(r2.Gains); j++ {
		if r2.Gains[j] > r2.Gains[j-1]+1e-9 {
			t.Fatalf("greedy2 round gains increased: %v", r2.Gains)
		}
	}
}
