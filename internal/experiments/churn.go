package experiments

import (
	"context"
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// RunChurnExperiment evaluates the dynamic-instance extension: a base
// station whose population churns by Poisson arrivals and departures,
// maintained with incremental evaluator deltas instead of per-period
// rebuilds. Each trial runs the same churn sequence twice — cold re-solves
// versus warm-started ones (the previous period's centers carried over) —
// so the pairing isolates the warm start's effect. Every period of every
// run is verified bitwise against a from-scratch rebuild, making the table
// a correctness gate for the delta path as well as a performance readout.
func RunChurnExperiment(ctx context.Context, cfg RunConfig) (*Output, error) {
	n, periods := 60, 10
	if cfg.Quick {
		n, periods = 20, 3
	}
	churnCfg := func(seed uint64, warm bool) broadcast.ChurnConfig {
		return broadcast.ChurnConfig{
			K: 2, Radius: 1.2, Periods: periods,
			ArrivalRate: 4, DepartRate: 3,
			Solver: "greedy2", Seed: seed,
			WarmStart: warm, Index: "grid", Verify: true,
			Obs: cfg.Obs,
		}
	}
	genChurnTrace := func(rng *xrand.Rand) (*trace.Trace, error) {
		return trace.Generate(trace.Config{
			N:      n,
			Box:    pointset.PaperBox2D(),
			Kind:   trace.ZipfTopics,
			Scheme: pointset.RandomIntWeight,
			Topics: 5,
			Sigma:  0.35,
		}, rng)
	}

	res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^0xc4012,
		func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
			tr, err := genChurnTrace(rng)
			if err != nil {
				return nil, err
			}
			seed := rng.Uint64()
			cold, err := broadcast.RunChurn(ctx, tr, churnCfg(seed, false))
			if err != nil {
				return nil, err
			}
			warm, err := broadcast.RunChurn(ctx, tr, churnCfg(seed, true))
			if err != nil {
				return nil, err
			}
			wins := 0.0
			for p, ps := range warm.Periods {
				if p > 0 && ps.Objective > cold.Periods[p].Objective {
					wins++
				}
			}
			return map[string]float64{
				"cold/sat":   cold.MeanSatisfaction,
				"warm/sat":   warm.MeanSatisfaction,
				"warm/wins":  wins,
				"population": warm.MeanPopulation,
				"deltas":     float64(warm.IncrementalDeltas),
				"arrivals":   float64(warm.TotalArrivals),
				"departures": float64(warm.TotalDepartures),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	get := func(key string) (float64, error) {
		v, ok := res.Mean(key)
		if !ok {
			return 0, fmt.Errorf("experiments: missing churn metric %q", key)
		}
		return v, nil
	}
	tb := report.NewTable(
		fmt.Sprintf("dynamic-instance churn (n=%d start, %d periods, Poisson +4/-3, greedy2, grid index, verified)", n, periods),
		"re-solve", "mean satisfaction", "warm wins/run", "deltas/run")
	coldSat, err := get("cold/sat")
	if err != nil {
		return nil, err
	}
	warmSat, err := get("warm/sat")
	if err != nil {
		return nil, err
	}
	wins, err := get("warm/wins")
	if err != nil {
		return nil, err
	}
	deltas, err := get("deltas")
	if err != nil {
		return nil, err
	}
	tb.AddRow("cold", coldSat, "-", deltas)
	tb.AddRow("warm-started", warmSat, wins, deltas)

	// A representative single run for the per-period view.
	tr, err := genChurnTrace(xrand.New(cfg.Seed ^ 0x5eed))
	if err != nil {
		return nil, err
	}
	m, err := broadcast.RunChurn(ctx, tr, churnCfg(cfg.Seed^0x5eed, true))
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID: "churn", Title: "population and objective across a churning run (warm-started)",
		XLabel: "period", YLabel: "value",
	}
	var xs, pop, obj, carry []float64
	for _, ps := range m.Periods {
		xs = append(xs, float64(ps.Period))
		pop = append(pop, float64(ps.N))
		obj = append(obj, ps.Objective)
		if ps.Period > 0 {
			carry = append(carry, ps.CarryObjective)
		}
	}
	fig.Add("population", xs, pop)
	fig.Add("objective (adopted)", xs, obj)
	if len(carry) > 0 {
		fig.Add("objective (carried-over)", xs[1:], carry)
	}
	out := &Output{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}
	out.Notes = append(out.Notes,
		"Every period's incrementally maintained objective was verified bit-identical to a from-scratch",
		"rebuild (ChurnConfig.Verify). The warm-started re-solve adopts the carried-over centers only when",
		"they outscore the cold solution, so its satisfaction column can never trail the cold row's by more",
		"than solver randomness; deltas/run counts AddUser/RemoveUser operations applied in place of rebuilds.")
	return out, nil
}
