package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/spatial"
	"repro/internal/xrand"
)

// RunNearLinearScale compares the exact accelerated greedy (lazy + grid
// index) against the grid-snapped near-linear solver as n grows. Unlike the
// ablation-scale variants these are NOT bit-identical: nearlinear trades a
// bounded objective gap for per-round cost proportional to the number of
// occupied grid cells instead of n. The table reports that gap (quality
// ratio vs the exact greedy) next to the wall-clock speedup.
func RunNearLinearScale(ctx context.Context, cfg RunConfig) (*Output, error) {
	sizes := []int{2000, 20000}
	k, r := 8, 0.4
	if cfg.Quick {
		sizes = []int{500}
		k = 4
	}
	tb := report.NewTable(fmt.Sprintf("near-linear solver vs exact greedy (k=%d, r=%g, 2-norm, 4x4 box)", k, r),
		"n", "solver", "total reward", "quality vs exact", "time", "speedup")
	out := &Output{}
	rng := xrand.New(cfg.Seed ^ 0x9ea51)
	for _, n := range sizes {
		set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
		if err != nil {
			return nil, err
		}
		run := func(alg core.Algorithm) (*core.Result, time.Duration, error) {
			in, err := reward.NewInstance(set, norm.L2{}, r)
			if err != nil {
				return nil, 0, err
			}
			g, err := spatial.NewGrid(set.Points(), r)
			if err != nil {
				return nil, 0, err
			}
			in.SetFinder(g)
			start := time.Now()
			res, err := alg.Run(ctx, in, k)
			return res, time.Since(start), err
		}
		exact, exactTime, err := run(core.LazyGreedy{})
		if err != nil {
			return nil, err
		}
		approx, approxTime, err := run(core.NearLinear{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		ratio := approx.Total / exact.Total
		tb.AddRow(n, "greedy2 lazy+grid", exact.Total, 1.0, exactTime.Round(10*time.Microsecond).String(), 1.0)
		tb.AddRow(n, "nearlinear", approx.Total, ratio,
			approxTime.Round(10*time.Microsecond).String(), float64(exactTime)/float64(approxTime))
		if ratio < 0.85 {
			return nil, fmt.Errorf("experiments: nearlinear quality %0.4f at n=%d below the 0.85 floor", ratio, n)
		}
	}
	out.Tables = append(out.Tables, tb)
	out.Notes = append(out.Notes,
		"nearlinear snaps candidates to occupied grid cells (cell width = the coverage radius), seeds",
		"with a k-means++ pass over cell representatives, and locally refines each pick; per-round",
		"cost is O(occupied cells), so wall time stops tracking n once cells saturate. The quality",
		"column is the price of the approximation; the speedup column is what it buys.")
	return out, nil
}
