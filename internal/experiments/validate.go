package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/exhaustive"
	"repro/internal/norm"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/theory"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// RunValidate empirically stress-tests the paper's two theorems on many
// small random instances where a strong baseline is computable exactly:
//
//   - Theorem 2: greedy2's reward ≥ (1 − (1 − 1/n)^k) · f_opt.
//   - Theorem 1: the round-based heuristic with a strong inner solver stays
//     above (1 − (1 − 1/k)^k) · f_opt (its guarantee assumes exact inner
//     rounds, so rare dips measure solver slack, not a theorem violation).
//
// It reports the worst observed ratios and counts bound violations (Theorem
// 2's count must be zero; the harness fails otherwise).
func RunValidate(ctx context.Context, cfg RunConfig) (*Output, error) {
	instances := 400
	if cfg.Quick {
		instances = 40
	}
	rng := xrand.New(cfg.Seed ^ 0x7a11d)
	type worst struct {
		ratio float64
		n, k  int
		r     float64
	}
	w2 := worst{ratio: math.Inf(1)}
	w1 := worst{ratio: math.Inf(1)}
	viol2, dips1 := 0, 0
	norms := []norm.Norm{norm.L1{}, norm.L2{}}

	for t := 0; t < instances; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := rng.IntRange(3, 9)
		k := rng.IntRange(1, 3)
		r := rng.Uniform(0.6, 2.2)
		nm := norms[t%len(norms)]
		pts := make([]vec.V, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = vec.Of(rng.Uniform(0, 4), rng.Uniform(0, 4))
			ws[i] = float64(rng.IntRange(1, 5))
		}
		set, err := pointset.New(pts, ws)
		if err != nil {
			return nil, err
		}
		in, err := newInstance(set, nm, r)
		if err != nil {
			return nil, err
		}
		// Strong baseline: enriched + polished exhaustive, maxed with the
		// best algorithm result (an upper proxy for f_opt on these scales;
		// any true f_opt is >= the point-restricted optimum, making the
		// bound check conservative in the right direction for Theorem 2's
		// guarantee only if f_opt is not underestimated — so use the
		// largest value any method can find).
		ex, err := exhaustive.Solve(ctx, in, k, exhaustive.Options{
			GridPer: 7, Box: pointset.PaperBox2D(), Polish: true, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		g2, err := core.LocalGreedy{Workers: 1}.Run(ctx, in, k)
		if err != nil {
			return nil, err
		}
		g1, err := (core.RoundBased{Solver: optimize.Multistart{Workers: 1}}).Run(ctx, in, k)
		if err != nil {
			return nil, err
		}
		fopt := math.Max(ex.Total, math.Max(g2.Total, g1.Total))
		if fopt <= 0 {
			continue
		}
		r2 := g2.Total / fopt
		r1 := g1.Total / fopt
		if r2 < w2.ratio {
			w2 = worst{ratio: r2, n: n, k: k, r: r}
		}
		if r1 < w1.ratio {
			w1 = worst{ratio: r1, n: n, k: k, r: r}
		}
		if r2 < theory.Approx2(n, k)-1e-9 {
			viol2++
		}
		if r1 < theory.Approx1(k)-1e-9 {
			dips1++
		}
	}
	if viol2 > 0 {
		return nil, fmt.Errorf("experiments: Theorem 2 violated on %d/%d instances", viol2, instances)
	}
	tb := report.NewTable(fmt.Sprintf("Theorem validation over %d random instances (n<=9, k<=3, both norms)", instances),
		"check", "worst observed ratio", "at (n,k,r)", "bound violations")
	tb.AddRow("Theorem 2 (greedy2 vs 1-(1-1/n)^k)", w2.ratio,
		fmt.Sprintf("(%d,%d,%.2f)", w2.n, w2.k, w2.r), viol2)
	tb.AddRow("Theorem 1 (greedy1 vs 1-(1-1/k)^k)", w1.ratio,
		fmt.Sprintf("(%d,%d,%.2f)", w1.n, w1.k, w1.r), dips1)
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"Theorem 2 must hold unconditionally (the harness errors on any violation).",
		"Theorem 1 assumes an exact inner solver; dips, if any, measure multistart slack and are",
		"reported rather than failed. Observed ratios are far above both bounds on random instances.")
	return out, nil
}
