package experiments

import (
	"context"
	"fmt"

	"repro/internal/exhaustive"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/theory"
	"repro/internal/xrand"
)

// ratioAlgNames are the metric keys produced per trial, in display order.
var ratioAlgNames = []string{"greedy1", "greedy2", "greedy3", "greedy4"}

// figRatio builds the driver for the paper's Figs. 4–7: in the 4×4 2-D box,
// for n ∈ {10, 40} and every (k, r) configuration, the approximation ratio
// of each greedy algorithm against the exhaustive baseline, averaged over
// randomized trials, alongside the approx1/approx2 reference bounds.
func figRatio(id string, nm norm.Norm, scheme pointset.WeightScheme) func(context.Context, RunConfig) (*Output, error) {
	return func(ctx context.Context, cfg RunConfig) (*Output, error) {
		out := &Output{}
		for _, n := range []int{10, 40} {
			fig := &report.Figure{
				ID:     fmt.Sprintf("%s-n%d", id, n),
				Title:  fmt.Sprintf("approximation ratio vs exhaustive, %s, %s, n=%d", nm.Name(), scheme, n),
				XLabel: "configuration index (k=2,r=1 | k=2,r=1.5 | k=2,r=2 | k=4,r=1 | k=4,r=1.5 | k=4,r=2)",
				YLabel: "approximation ratio",
			}
			tb := report.NewTable(
				fmt.Sprintf("%s data, %s, %s, n=%d", id, nm.Name(), scheme, n),
				"config", "ratio1", "ratio2", "ratio3", "ratio4", "approx1", "approx2")

			grid := configGrid()
			xs := make([]float64, len(grid))
			series := map[string][]float64{}
			var a1s, a2s []float64
			for ci, c := range grid {
				xs[ci] = float64(ci + 1)
				means, err := ratioCell(ctx, cfg, n, c, nm, scheme, uint64(ci)<<8)
				if err != nil {
					return nil, err
				}
				for _, alg := range ratioAlgNames {
					series[alg] = append(series[alg], means[alg])
				}
				a1 := theory.Approx1(c.K)
				a2 := theory.Approx2(n, c.K)
				a1s = append(a1s, a1)
				a2s = append(a2s, a2)
				tb.AddRow(c.String(), means["greedy1"], means["greedy2"],
					means["greedy3"], means["greedy4"], a1, a2)
			}
			for _, alg := range ratioAlgNames {
				fig.Add("ratio "+alg, xs, series[alg])
			}
			fig.Add("approx1 (Thm 1)", xs, a1s)
			fig.Add("approx2 (Thm 2)", xs, a2s)
			out.Figures = append(out.Figures, fig)
			out.Tables = append(out.Tables, tb)

			// Terminal rendition of the paper's grouped-bar panels.
			groups := make([]string, len(grid))
			for gi, c := range grid {
				groups[gi] = c.String()
			}
			bar := report.NewBarChart(fmt.Sprintf("%s bars, n=%d (ratios)", id, n), groups...)
			for _, alg := range ratioAlgNames {
				bar.AddSeries(alg, series[alg]...)
			}
			out.Notes = append(out.Notes, bar.Render(40))
		}
		out.Notes = append(out.Notes,
			"Expected shape (paper §VI.B): every measured ratio sits above approx2 (Theorem 2 validated);",
			"greedy4 >= greedy2 >= greedy3 on average; the round-based greedy1 lands between greedy2 and greedy4.",
			"The paper's prose swaps algorithm labels relative to its own Table I; see EXPERIMENTS.md.")
		return out, nil
	}
}

// ratioCell averages the per-algorithm approximation ratios over trials for
// one (n, k, r) configuration.
func ratioCell(ctx context.Context, cfg RunConfig, n int, c kr, nm norm.Norm, scheme pointset.WeightScheme, salt uint64) (map[string]float64, error) {
	res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^salt,
		func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
			set, err := pointset.GenUniform(n, pointset.PaperBox2D(), scheme, rng)
			if err != nil {
				return nil, err
			}
			in, err := newInstance(set, nm, c.R)
			if err != nil {
				return nil, err
			}
			ex, err := exhaustive.Solve(ctx, in, c.K, exhaustive.Options{
				GridPer: cfg.exhaustiveGridPer(2),
				Box:     pointset.PaperBox2D(),
				Polish:  cfg.polish(),
				Workers: 1, // trials are already parallel
			})
			if err != nil {
				return nil, err
			}
			// The denominator is the best-known solution: the exhaustive
			// subset optimum (optionally polished) or any algorithm's
			// result, whichever is larger. The continuous-placement
			// algorithms (greedy1, greedy4) can escape the candidate
			// lattice, so taking the max keeps every ratio a true
			// fraction of the strongest solution found (DESIGN.md §3.2).
			totals := map[string]float64{}
			best := ex.Total
			for _, alg := range paperAlgorithms(cfg) {
				r, err := alg.Run(ctx, in, c.K)
				if err != nil {
					return nil, err
				}
				totals[alg.Name()] = r.Total
				if r.Total > best {
					best = r.Total
				}
			}
			metrics := map[string]float64{}
			for name, tot := range totals {
				ratio := 1.0
				if best > 0 {
					ratio = tot / best
				}
				metrics[name] = ratio
			}
			return metrics, nil
		})
	if err != nil {
		return nil, err
	}
	means := map[string]float64{}
	for _, alg := range ratioAlgNames {
		m, ok := res.Mean(alg)
		if !ok {
			return nil, fmt.Errorf("experiments: metric %q missing", alg)
		}
		means[alg] = m
	}
	return means, nil
}
