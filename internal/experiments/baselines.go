package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// clusterPlacement adapts weighted k-means/k-medians into a placement
// baseline: put the k contents at the population's cluster centers.
func clusterPlacement(label string, nm norm.Norm, seed uint64) core.Placement {
	return core.Placement{
		Label: label,
		Place: func(in *reward.Instance, k int) ([]vec.V, error) {
			res, err := kmeans.KMeans(in.Set, k, kmeans.Options{Norm: nm}, xrand.New(seed))
			if err != nil {
				return nil, err
			}
			return res.Centers, nil
		},
	}
}

// RunBaselines compares the paper's reward-aware algorithms against
// reward-blind placements (weighted k-means, k-medians, uniform random) on
// the 2-D workload. The gap quantifies how much the distance-decay,
// cap-aware objective actually buys over "just cluster the users" — the
// paper's implicit motivation for greedy selection.
func RunBaselines(ctx context.Context, cfg RunConfig) (*Output, error) {
	const (
		n = 40
		k = 4
	)
	radii := []float64{1, 1.5, 2}
	if cfg.Quick {
		radii = []float64{1.5}
	}
	algs := func(trialSeed uint64) []core.Algorithm {
		return []core.Algorithm{
			core.LocalGreedy{Workers: 1},
			core.ComplexGreedy{Workers: 1},
			core.SwapLocalSearch{},
			clusterPlacement("kmeans", norm.L2{}, trialSeed),
			clusterPlacement("kmedians", norm.L1{}, trialSeed),
			core.RandomPlacement(trialSeed),
		}
	}
	names := []string{"greedy2", "greedy4", "greedy2+swap", "kmeans", "kmedians", "random"}

	tb := report.NewTable(fmt.Sprintf("reward-aware greedy vs reward-blind placement (n=%d, k=%d, 2-norm, random weights)", n, k),
		"r", "greedy2", "greedy4", "greedy2+swap", "kmeans", "kmedians", "random")
	var sig []string
	for _, r := range radii {
		res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^uint64(r*1000)^0xba5e,
			func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
				set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
				if err != nil {
					return nil, err
				}
				in, err := newInstance(set, norm.L2{}, r)
				if err != nil {
					return nil, err
				}
				metrics := map[string]float64{}
				for _, alg := range algs(rng.Uint64()) {
					rr, err := alg.Run(ctx, in, k)
					if err != nil {
						return nil, err
					}
					metrics[alg.Name()] = rr.Total
				}
				return metrics, nil
			})
		if err != nil {
			return nil, err
		}
		row := []interface{}{r}
		for _, name := range names {
			m, ok := res.Mean(name)
			if !ok {
				return nil, fmt.Errorf("experiments: missing baseline metric %q", name)
			}
			row = append(row, m)
		}
		tb.AddRow(row...)
		// Significance of the headline comparison at this radius.
		if !cfg.Quick && res.Trials >= 2 {
			tt, err := stats.WelchT(res.Samples["greedy4"], res.Samples["kmeans"])
			if err == nil {
				verdict := "not significant at 95%"
				if tt.P < 0.05 {
					verdict = "significant at 95%"
				}
				sig = append(sig, fmt.Sprintf(
					"r=%g: greedy4 vs kmeans Welch t = %.2f (df %.1f), p = %.3f — %s.",
					r, tt.T, tt.DF, tt.P, verdict))
			}
		}
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes, sig...)
	out.Notes = append(out.Notes,
		"Measured crossover: at small r (sparse coverage) the reward-aware greedy algorithms beat",
		"k-means by 15-30% — the cap and the distance decay matter. As r grows and disks overlap",
		"heavily, weighted k-means becomes competitive and can edge out the myopic greedy (its centers",
		"are jointly, not sequentially, placed) — but the 1-swap local search seeded from greedy2",
		"(greedy2+swap) recovers that gap and wins outright. Random placement trails everywhere.",
		"The paper's formulation pays off when content scopes are narrow relative to interest spread.")
	return out, nil
}
