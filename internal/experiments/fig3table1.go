package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/xrand"
)

// fig3Instance builds the worked example of Fig. 3 / Table I: 40 nodes in
// the 4×4 2-D box with random integer weights 1..5, 2-norm distance, k = 4
// disks of radius 1. The paper does not publish the node coordinates, so the
// instance is regenerated from the experiment seed; the qualitative
// structure (greedy 4 > greedy 2 > greedy 3 per round) is seed-independent.
func fig3Instance(ctx context.Context, cfg RunConfig) (*core.Result, *core.Result, *core.Result, *pointset.Set, error) {
	rng := xrand.New(cfg.Seed ^ 0xf163)
	set, err := pointset.GenUniform(40, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	in, err := newInstance(set, norm.L2{}, 1)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	const k = 4
	r2, err := core.Instrument(core.LocalGreedy{Workers: 1}, cfg.Obs).Run(ctx, in, k)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	r3, err := core.Instrument(core.SimpleGreedy{}, cfg.Obs).Run(ctx, in, k)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	r4, err := core.Instrument(core.ComplexGreedy{Workers: 1}, cfg.Obs).Run(ctx, in, k)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return r2, r3, r4, set, nil
}

// RunTable1 regenerates Table I: the coverage reward gained in each of the
// four rounds by greedy 2, greedy 3, and greedy 4 on the worked example,
// plus the totals.
func RunTable1(ctx context.Context, cfg RunConfig) (*Output, error) {
	r2, r3, r4, _, err := fig3Instance(ctx, cfg)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Table I: per-round coverage reward (40 nodes, 4x4, 2-norm, k=4, r=1)",
		"Coverage reward", "1", "2", "3", "4", "Total")
	for _, r := range []*core.Result{r2, r3, r4} {
		label := map[string]string{"greedy2": "Greedy 2", "greedy3": "Greedy 3", "greedy4": "Greedy 4"}[r.Algorithm]
		tb.AddRow(label, r.Gains[0], r.Gains[1], r.Gains[2], r.Gains[3], r.Total)
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"Paper's Table I (its own instance): greedy2 44.63, greedy3 37.84, greedy4 63.56.",
		"Expected shape: greedy4 total > greedy2 total > greedy3 total, and round gains non-increasing for greedy2.")
	return out, nil
}

// RunFig3 regenerates Fig. 3 as ASCII scatter plots. The paper's figure has
// one panel per round per algorithm — (a)–(d) greedy 2, (e)–(h) greedy 3,
// (i)–(l) greedy 4 — showing the centers accumulated so far; this driver
// renders the same 12-panel progression.
func RunFig3(ctx context.Context, cfg RunConfig) (*Output, error) {
	r2, r3, r4, set, err := fig3Instance(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &Output{}
	panel := 'a'
	for _, r := range []*core.Result{r2, r3, r4} {
		prefixes := r.PrefixTotals()
		for j := 1; j <= len(r.Centers); j++ {
			sc, err := report.NewScatter(0, 4, 0, 4, 64, 24)
			if err != nil {
				return nil, err
			}
			for i := 0; i < set.Len(); i++ {
				sc.Plot(set.Point(i), report.WeightGlyph(set.Weight(i)))
			}
			for _, c := range r.Centers[:j] {
				sc.Plot(c, '@')
			}
			out.Notes = append(out.Notes, fmt.Sprintf(
				"Fig. 3(%c) — %s after round %d (cumulative reward %.4f):\n%s",
				panel, r.Algorithm, j, prefixes[j-1], sc.Render()))
			panel++
		}
	}
	return out, nil
}
