// Package experiments contains one driver per table and figure in the
// paper's evaluation (§VI), plus the ablations DESIGN.md calls out. Each
// driver regenerates the corresponding artifact's rows/series from scratch
// (workload generation → algorithms → baselines → aggregation) and returns
// them as renderable tables and figures.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/solver"
)

// RunConfig tunes an experiment run.
type RunConfig struct {
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// Trials is the number of randomized instances per configuration cell
	// (default 5).
	Trials int
	// Workers bounds parallelism; <= 0 uses all CPUs.
	Workers int
	// Quick shrinks the run for smoke tests: 1 trial, no candidate
	// enrichment, no polishing.
	Quick bool
	// Obs receives telemetry from instrumented stages; nil (the default)
	// runs uninstrumented. Drivers attach it to the algorithms they run
	// via Algorithms / core.Instrument.
	Obs obs.Collector
}

func (c RunConfig) trials() int {
	if c.Quick {
		return 1
	}
	if c.Trials <= 0 {
		return 5
	}
	return c.Trials
}

// exhaustiveGridPer is the baseline candidate-lattice resolution per
// dimension (0 in quick mode).
func (c RunConfig) exhaustiveGridPer(dim int) int {
	if c.Quick {
		return 0
	}
	if dim >= 3 {
		return 5 // 125 extra candidates in 3-D is already generous
	}
	return 5
}

func (c RunConfig) polish() bool { return !c.Quick }

// Output is everything an experiment produces: renderable tables, figures,
// and free-form notes. Render flattens it for the CLI.
type Output struct {
	Tables  []*report.Table
	Figures []*report.Figure
	Notes   []string
}

// Render concatenates all artifacts in a stable order.
func (o *Output) Render() string {
	var b strings.Builder
	for _, t := range o.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, f := range o.Figures {
		b.WriteString(f.Render())
		b.WriteByte('\n')
	}
	for _, n := range o.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a registered paper artifact reproduction. Run observes ctx
// cooperatively: a cancelled experiment stops between units of work and
// returns ctx.Err() (drivers do not assemble partial tables — an artifact is
// either reproduced or not).
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, cfg RunConfig) (*Output, error)
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig2", Title: "Fig. 2: approximation-ratio bounds, 10- and 40-node", Run: RunFig2},
		{ID: "fig3", Title: "Fig. 3: worked 40-node example, center placement per algorithm", Run: RunFig3},
		{ID: "table1", Title: "Table I: per-round coverage reward of greedy 2/3/4", Run: RunTable1},
		{ID: "fig4", Title: "Fig. 4: 2-D, 2-norm, random weights — ratio vs exhaustive", Run: figRatio("fig4", norm.L2{}, pointset.RandomIntWeight)},
		{ID: "fig5", Title: "Fig. 5: 2-D, 2-norm, same weight — ratio vs exhaustive", Run: figRatio("fig5", norm.L2{}, pointset.UnitWeight)},
		{ID: "fig6", Title: "Fig. 6: 2-D, 1-norm, random weights — ratio vs exhaustive", Run: figRatio("fig6", norm.L1{}, pointset.RandomIntWeight)},
		{ID: "fig7", Title: "Fig. 7: 2-D, 1-norm, same weight — ratio vs exhaustive", Run: figRatio("fig7", norm.L1{}, pointset.UnitWeight)},
		{ID: "fig8", Title: "Fig. 8: 3-D, 1-norm, random weights — total rewards", Run: figReward("fig8", pointset.RandomIntWeight)},
		{ID: "fig9", Title: "Fig. 9: 3-D, 1-norm, same weight — total rewards", Run: figReward("fig9", pointset.UnitWeight)},
		{ID: "summary", Title: "§VI.B summary: average approximation ratio per algorithm", Run: RunSummary},
		{ID: "tradeoff", Title: "§III.A k-vs-service-frequency tradeoff (broadcast substrate)", Run: RunTradeoff},
		{ID: "ablation-exhaustive", Title: "Ablation: exhaustive baseline candidate enrichment and polishing", Run: RunAblationExhaustive},
		{ID: "ablation-ballmode", Title: "Ablation: greedy 4 enclosing-ball construction (exact vs projection)", Run: RunAblationBallMode},
		{ID: "ablation-inner", Title: "Ablation: round-based heuristic inner-solver fidelity", Run: RunAblationInner},
		{ID: "ablation-scale", Title: "Ablation: lazy evaluation and spatial indexing beyond paper scale", Run: RunAblationScale},
		{ID: "nearlinear-scale", Title: "Extension: near-linear grid solver — quality gap vs exact greedy and speedup", Run: RunNearLinearScale},
		{ID: "validate", Title: "Empirical stress-test of Theorems 1 and 2 on random instances", Run: RunValidate},
		{ID: "multistation", Title: "Extension: multi-station deployments under a fixed broadcast budget", Run: RunMultistation},
		{ID: "kcurve", Title: "Extension: total reward as a function of k (diminishing returns)", Run: RunKCurve},
		{ID: "complexity", Title: "Empirical check of the Theorem 3/4 complexity claims", Run: RunComplexity},
		{ID: "baselines", Title: "Extension: greedy vs reward-blind placement (k-means/k-medians/random)", Run: RunBaselines},
		{ID: "radiuscurve", Title: "Extension: total reward as a continuous function of the radius", Run: RunRadiusCurve},
		{ID: "weightskew", Title: "Extension: sensitivity to the weight scheme's skew", Run: RunWeightSkew},
		{ID: "churn", Title: "Extension: dynamic-instance churn — incremental deltas, warm-started re-solves", Run: RunChurnExperiment},
	}
}

// ByID resolves an experiment. Unknown ids report the sorted catalog in the
// same canonical format the solver registry uses (solver.CatalogError), so
// `cdbench -run` and `cdgreedy -alg` answer a typo identically.
func ByID(id string) (Experiment, error) {
	ids := make([]string, 0)
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	return Experiment{}, solver.CatalogError("experiments", "id", id, ids)
}

// Algorithms under test, in the paper's naming, resolved through the solver
// registry (DESIGN.md §3.1, §8) so the experiment drivers and the CLI agree
// on constructors. Workers is pinned to 1: the drivers parallelize across
// trials, not inside algorithms. A live cfg.Obs collector is attached to
// every algorithm by the registry.
func paperAlgorithms(cfg RunConfig) []core.Algorithm {
	names := solver.PaperNames()
	algs := make([]core.Algorithm, 0, len(names))
	for _, name := range names {
		// Seed stays zero: instance randomness lives in the workload
		// generators (cfg.Seed), and the historical driver behavior used the
		// algorithms' zero-seed defaults.
		a, err := solver.New(name, solver.Options{Workers: 1, Obs: cfg.Obs})
		if err != nil {
			panic(err) // registry and PaperNames ship together; a miss is a programming error
		}
		algs = append(algs, a)
	}
	return algs
}

// configGrid is the paper's (k, r) sweep: "different number of centers
// (2, 4) and different radius of the centers (1, 1.5, 2)".
type kr struct {
	K int
	R float64
}

func configGrid() []kr {
	return []kr{{2, 1}, {2, 1.5}, {2, 2}, {4, 1}, {4, 1.5}, {4, 2}}
}

func (c kr) String() string { return fmt.Sprintf("k=%d,r=%g", c.K, c.R) }

// newInstance builds a reward instance from freshly generated points.
func newInstance(set *pointset.Set, nm norm.Norm, r float64) (*reward.Instance, error) {
	return reward.NewInstance(set, nm, r)
}
