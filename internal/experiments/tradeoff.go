package experiments

import (
	"context"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// RunTradeoff quantifies the paper's §III.A observation on the broadcast
// substrate: "a larger value of k tends to have a higher average of
// satisfiability, but it will also have less frequent service in a
// time-slotted content distribution system." A Zipf-topic population is
// simulated under a fixed slot budget while k sweeps upward.
func RunTradeoff(ctx context.Context, cfg RunConfig) (*Output, error) {
	rng := xrand.New(cfg.Seed ^ 0x7a0ff)
	tr, err := trace.Generate(trace.Config{
		N:      60,
		Box:    pointset.PaperBox2D(),
		Kind:   trace.ZipfTopics,
		Scheme: pointset.RandomIntWeight,
		Topics: 6,
		Sigma:  0.35,
	}, rng)
	if err != nil {
		return nil, err
	}
	periods := 8
	kMax := 6
	if cfg.Quick {
		periods, kMax = 2, 3
	}
	ms, err := broadcast.KSweep(ctx, tr, broadcast.AlgorithmScheduler{Algo: core.LocalGreedy{Workers: 1}},
		broadcast.Config{
			Radius:         1.2,
			Periods:        periods,
			DriftSigma:     0.15,
			ChurnRate:      0.05,
			SlotsPerPeriod: 12,
			Seed:           cfg.Seed ^ 0xbeef,
		}, kMax)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("k vs satisfaction/service-frequency tradeoff (greedy2 scheduler, 60 Zipf users)",
		"k", "mean satisfaction", "fairness (Jain)", "service frequency", "satisfaction/slot")
	fig := &report.Figure{
		ID: "tradeoff", Title: "satisfaction vs service frequency as k grows",
		XLabel: "broadcasts per period k", YLabel: "metric value",
	}
	var xs, sat, freq, eff []float64
	for i, m := range ms {
		k := i + 1
		tb.AddRow(k, m.MeanSatisfaction, m.Fairness, m.ServiceFrequency, m.SatisfactionPerSlot)
		xs = append(xs, float64(k))
		sat = append(sat, m.MeanSatisfaction)
		freq = append(freq, m.ServiceFrequency)
		eff = append(eff, m.SatisfactionPerSlot)
	}
	fig.Add("mean satisfaction", xs, sat)
	fig.Add("service frequency", xs, freq)
	fig.Add("satisfaction per slot", xs, eff)
	out := &Output{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}
	out.Notes = append(out.Notes,
		"Satisfaction rises monotonically with k while service frequency falls as slots/k;",
		"satisfaction-per-slot peaks at small k and decays — the quantitative form of §III.A's remark.")
	return out, nil
}
