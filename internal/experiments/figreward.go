package experiments

import (
	"context"
	"fmt"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// figReward builds the driver for the paper's Figs. 8–9: the 4×4×4 3-D box
// under the 1-norm, n ∈ {40, 160}, reporting the absolute total reward each
// algorithm gains per (k, r) configuration (the paper does not compute an
// exhaustive baseline in 3-D).
func figReward(id string, scheme pointset.WeightScheme) func(context.Context, RunConfig) (*Output, error) {
	return func(ctx context.Context, cfg RunConfig) (*Output, error) {
		nm := norm.L1{}
		out := &Output{}
		for _, n := range []int{40, 160} {
			fig := &report.Figure{
				ID:     fmt.Sprintf("%s-n%d", id, n),
				Title:  fmt.Sprintf("total reward, 3-D, %s, %s, n=%d", nm.Name(), scheme, n),
				XLabel: "configuration index (k=2,r=1 | k=2,r=1.5 | k=2,r=2 | k=4,r=1 | k=4,r=1.5 | k=4,r=2)",
				YLabel: "total reward",
			}
			tb := report.NewTable(
				fmt.Sprintf("%s data, 3-D, %s, %s, n=%d", id, nm.Name(), scheme, n),
				"config", "greedy1", "greedy2", "greedy3", "greedy4", "max (Σw)")

			grid := configGrid()
			xs := make([]float64, len(grid))
			series := map[string][]float64{}
			for ci, c := range grid {
				xs[ci] = float64(ci + 1)
				res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^(uint64(ci)<<16)^0x3d,
					func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
						set, err := pointset.GenUniform(n, pointset.PaperBox3D(), scheme, rng)
						if err != nil {
							return nil, err
						}
						in, err := newInstance(set, nm, c.R)
						if err != nil {
							return nil, err
						}
						metrics := map[string]float64{"maxreward": set.TotalWeight()}
						for _, alg := range paperAlgorithms(cfg) {
							r, err := alg.Run(ctx, in, c.K)
							if err != nil {
								return nil, err
							}
							metrics[alg.Name()] = r.Total
						}
						return metrics, nil
					})
				if err != nil {
					return nil, err
				}
				row := []interface{}{c.String()}
				for _, alg := range ratioAlgNames {
					m, ok := res.Mean(alg)
					if !ok {
						return nil, fmt.Errorf("experiments: metric %q missing", alg)
					}
					series[alg] = append(series[alg], m)
					row = append(row, m)
				}
				maxR, _ := res.Mean("maxreward")
				row = append(row, maxR)
				tb.AddRow(row...)
			}
			for _, alg := range ratioAlgNames {
				fig.Add("reward "+alg, xs, series[alg])
			}
			out.Figures = append(out.Figures, fig)
			out.Tables = append(out.Tables, tb)

			// Terminal rendition of the paper's grouped-bar panels.
			groups := make([]string, len(grid))
			for gi, c := range grid {
				groups[gi] = c.String()
			}
			bar := report.NewBarChart(fmt.Sprintf("%s bars, n=%d", id, n), groups...)
			for _, alg := range ratioAlgNames {
				bar.AddSeries(alg, series[alg]...)
			}
			out.Notes = append(out.Notes, bar.Render(40))
		}
		out.Notes = append(out.Notes,
			"Expected shape (paper §VI.B.4, labels normalized to Table I's ordering):",
			"greedy4 collects the most reward in 3-D/1-norm; greedy2 follows; greedy3 trails, with",
			"the gap widening at small r where single-point placement wastes coverage.")
		return out, nil
	}
}
