package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exhaustive"
	"repro/internal/norm"
	"repro/internal/optimize"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// RunAblationExhaustive quantifies how much the exhaustive baseline's value
// depends on candidate enrichment and polishing (DESIGN.md §3.2): the same
// instances solved with points only, points+lattice, and points+lattice+
// polish. The ratio-figure denominators use the strongest variant.
func RunAblationExhaustive(ctx context.Context, cfg RunConfig) (*Output, error) {
	variants := []struct {
		name string
		opt  exhaustive.Options
	}{
		{"points-only", exhaustive.Options{Workers: 1}},
		{"points+grid5", exhaustive.Options{GridPer: 5, Box: pointset.PaperBox2D(), Workers: 1}},
		{"points+grid5+polish", exhaustive.Options{GridPer: 5, Box: pointset.PaperBox2D(), Polish: true, Workers: 1}},
		{"points+grid9+polish", exhaustive.Options{GridPer: 9, Box: pointset.PaperBox2D(), Polish: true, Workers: 1}},
	}
	if cfg.Quick {
		variants = variants[:2]
	}
	n, k, r := 20, 3, 1.5
	res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^0xab1,
		func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
			set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
			if err != nil {
				return nil, err
			}
			in, err := newInstance(set, norm.L2{}, r)
			if err != nil {
				return nil, err
			}
			metrics := map[string]float64{}
			for _, v := range variants {
				sol, err := exhaustive.Solve(ctx, in, k, v.opt)
				if err != nil {
					return nil, err
				}
				metrics[v.name] = sol.Total
			}
			return metrics, nil
		})
	if err != nil {
		return nil, err
	}
	tb := report.NewTable(fmt.Sprintf("Exhaustive-baseline ablation (n=%d, k=%d, r=%g, 2-norm)", n, k, r),
		"variant", "mean objective", "ci95")
	for _, v := range variants {
		s := res.Summaries[v.name]
		tb.AddRow(v.name, s.Mean, s.CI95())
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"Each variant's objective is non-decreasing down the table by construction;",
		"the gap between points-only and polished variants bounds how far the paper's unspecified",
		"exhaustive baseline could shift the reported ratios.")
	return out, nil
}

// RunAblationBallMode compares greedy 4 under the exact enclosing-ball
// constructions against the paper's per-dimension projection rule
// (DESIGN.md §3.4), under both norms in 2-D and additionally under the
// 1-norm in 3-D where the exact ball requires the LP solver.
func RunAblationBallMode(ctx context.Context, cfg RunConfig) (*Output, error) {
	n, k, r := 30, 4, 1.5
	type variant struct {
		key  string
		dim  int
		nm   norm.Norm
		mode core.BallMode
	}
	variants := []variant{
		{"2-D/2-norm/auto", 2, norm.L2{}, core.BallAuto},
		{"2-D/2-norm/projection", 2, norm.L2{}, core.BallProjection},
		{"2-D/1-norm/auto", 2, norm.L1{}, core.BallAuto},
		{"2-D/1-norm/projection", 2, norm.L1{}, core.BallProjection},
		{"3-D/1-norm/exact-lp", 3, norm.L1{}, core.BallExactLP},
		{"3-D/1-norm/projection", 3, norm.L1{}, core.BallProjection},
	}
	res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^0xab2,
		func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
			set2, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
			if err != nil {
				return nil, err
			}
			set3, err := pointset.GenUniform(n, pointset.PaperBox3D(), pointset.RandomIntWeight, rng)
			if err != nil {
				return nil, err
			}
			metrics := map[string]float64{}
			for _, v := range variants {
				set := set2
				if v.dim == 3 {
					set = set3
				}
				in, err := newInstance(set, v.nm, r)
				if err != nil {
					return nil, err
				}
				rr, err := (core.ComplexGreedy{Mode: v.mode, Workers: 1}).Run(ctx, in, k)
				if err != nil {
					return nil, err
				}
				metrics[v.key] = rr.Total
			}
			return metrics, nil
		})
	if err != nil {
		return nil, err
	}
	tb := report.NewTable(fmt.Sprintf("greedy4 ball-mode ablation (n=%d, k=%d, r=%g)", n, k, r),
		"dim/norm/mode", "mean total reward", "ci95")
	for _, v := range variants {
		s := res.Summaries[v.key]
		tb.AddRow(v.key, s.Mean, s.CI95())
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"auto = exact smallest enclosing ball for the norm (Welzl for 2-norm; 45°-rotated box for 1-norm in 2-D);",
		"projection = the paper's (min+max)/2 per-dimension rule (exact only for the ∞-norm);",
		"exact-lp = exact 1-norm ball in any dimension via the simplex LP solver.",
		"The gaps measure what the paper's projection heuristic gives up inside Algorithm 4's walk.")
	return out, nil
}

// RunAblationInner sweeps the round-based heuristic's inner-solver fidelity:
// coarse grid, fine grid, and multistart pattern search, reporting achieved
// objective. Theorem 1's guarantee assumes an exact inner solver; this shows
// how the guarantee erodes with solver quality (DESIGN.md §3.1).
func RunAblationInner(ctx context.Context, cfg RunConfig) (*Output, error) {
	n, k, r := 30, 4, 1.5
	solvers := []core.InnerSolver{
		optimize.Grid{Per: 5, Workers: 1},
		optimize.Grid{Per: 17, Workers: 1},
		optimize.Weiszfeld{},
		optimize.NelderMead{},
		optimize.Anneal{Seed: cfg.Seed},
		optimize.Critical{Workers: 1},
		optimize.Multistart{Workers: 1},
	}
	res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^0xab3,
		func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
			set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
			if err != nil {
				return nil, err
			}
			in, err := newInstance(set, norm.L2{}, r)
			if err != nil {
				return nil, err
			}
			metrics := map[string]float64{}
			for _, s := range solvers {
				rr, err := (core.RoundBased{Solver: s}).Run(ctx, in, k)
				if err != nil {
					return nil, err
				}
				metrics[s.Name()] = rr.Total
			}
			return metrics, nil
		})
	if err != nil {
		return nil, err
	}
	tb := report.NewTable(fmt.Sprintf("greedy1 inner-solver ablation (n=%d, k=%d, r=%g, 2-norm)", n, k, r),
		"inner solver", "mean total reward", "ci95")
	for _, s := range solvers {
		sm := res.Summaries[s.Name()]
		tb.AddRow(s.Name(), sm.Mean, sm.CI95())
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"Finer inner solvers raise the per-round optimum greedy1 commits to; multistart compass search",
		"is the default used in the figure reproductions.")
	return out, nil
}
