package experiments

import (
	"context"
	"fmt"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// RunRadiusCurve extends the paper's three-point radius grid {1, 1.5, 2} to
// a continuous sweep: total reward versus r at fixed k for every algorithm.
// Reward is monotone in r point-wise (coverage only widens), so each curve
// must be non-decreasing; the interesting shape is where the algorithms
// separate — small r — and where they saturate toward Σw.
func RunRadiusCurve(ctx context.Context, cfg RunConfig) (*Output, error) {
	const (
		n = 40
		k = 4
	)
	radii := []float64{0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3}
	if cfg.Quick {
		radii = []float64{0.5, 1, 2}
	}
	algs := paperAlgorithms(cfg)
	fig := &report.Figure{
		ID:     "radiuscurve",
		Title:  fmt.Sprintf("total reward vs radius (n=%d, k=%d, 2-norm, random weights)", n, k),
		XLabel: "coverage radius r",
		YLabel: "total reward",
	}
	tb := report.NewTable("reward vs radius", "r", "greedy1", "greedy2", "greedy3", "greedy4", "Σw")
	series := map[string][]float64{}
	var xs, caps []float64
	for ri, r := range radii {
		res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^uint64(ri)<<20^0x4ad,
			func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
				set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
				if err != nil {
					return nil, err
				}
				in, err := newInstance(set, norm.L2{}, r)
				if err != nil {
					return nil, err
				}
				metrics := map[string]float64{"cap": set.TotalWeight()}
				for _, alg := range algs {
					rr, err := alg.Run(ctx, in, k)
					if err != nil {
						return nil, err
					}
					metrics[alg.Name()] = rr.Total
				}
				return metrics, nil
			})
		if err != nil {
			return nil, err
		}
		xs = append(xs, r)
		row := []interface{}{r}
		for _, name := range ratioAlgNames {
			m, _ := res.Mean(name)
			series[name] = append(series[name], m)
			row = append(row, m)
		}
		capMean, _ := res.Mean("cap")
		caps = append(caps, capMean)
		row = append(row, capMean)
		tb.AddRow(row...)
	}
	for _, name := range ratioAlgNames {
		fig.Add(name, xs, series[name])
	}
	fig.Add("Σw cap", xs, caps)
	out := &Output{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}
	out.Notes = append(out.Notes,
		"Every curve is non-decreasing in r; the algorithms separate most where coverage is scarce",
		"(r ≲ 1) and converge toward the Σw cap as disks swallow the region — bracketing the paper's",
		"three sampled radii.")
	return out, nil
}

// RunWeightSkew varies the weight scheme from uniform (W = 1) to highly
// skewed (integer weights in [1, W]) and reports each algorithm's share of
// the achievable reward. greedy3 keys on single-point weight, so skew helps
// it; the coverage-aware algorithms are robust across the sweep — locating
// where the paper's "different weight" scheme matters.
func RunWeightSkew(ctx context.Context, cfg RunConfig) (*Output, error) {
	const (
		n = 40
		k = 4
		r = 1.0
	)
	maxWeights := []int{1, 2, 5, 10, 20}
	if cfg.Quick {
		maxWeights = []int{1, 5}
	}
	algs := paperAlgorithms(cfg)
	tb := report.NewTable(fmt.Sprintf("fraction of Σw captured vs weight skew (n=%d, k=%d, r=%g, 2-norm)", n, k, r),
		"weights 1..W", "greedy1", "greedy2", "greedy3", "greedy4")
	for wi, maxW := range maxWeights {
		maxW := maxW
		res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^uint64(wi)<<18^0x5e1f,
			func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
				pts := make([]vec.V, n)
				ws := make([]float64, n)
				for i := range pts {
					pts[i] = pointset.PaperBox2D().Sample(rng)
					ws[i] = float64(rng.IntRange(1, maxW))
				}
				set, err := pointset.New(pts, ws)
				if err != nil {
					return nil, err
				}
				in, err := newInstance(set, norm.L2{}, r)
				if err != nil {
					return nil, err
				}
				metrics := map[string]float64{}
				for _, alg := range algs {
					rr, err := alg.Run(ctx, in, k)
					if err != nil {
						return nil, err
					}
					metrics[alg.Name()] = rr.Total / set.TotalWeight()
				}
				return metrics, nil
			})
		if err != nil {
			return nil, err
		}
		row := []interface{}{fmt.Sprintf("1..%d", maxW)}
		for _, name := range ratioAlgNames {
			m, _ := res.Mean(name)
			row = append(row, m)
		}
		tb.AddRow(row...)
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"Values are fractions of the achievable reward Σw. Skewed weights concentrate value on few",
		"users, which lifts greedy3 (it chases exactly those users) relative to the unweighted case,",
		"while the coverage-aware algorithms stay ahead throughout.")
	return out, nil
}
