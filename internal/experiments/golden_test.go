package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/reward"
	"repro/internal/xrand"
)

// Golden determinism: the whole pipeline — generator, algorithms, baselines
// — must produce the exact same numbers for a fixed seed, across machines
// and refactors that do not intentionally change behavior. These constants
// were captured from the current implementation; a diff here means either a
// real behavior change (update deliberately) or lost determinism (a bug).
func TestGoldenDeterminism(t *testing.T) {
	set, err := pointset.GenUniform(25, pointset.PaperBox2D(), pointset.RandomIntWeight, xrand.New(2011))
	if err != nil {
		t.Fatal(err)
	}
	in, err := reward.NewInstance(set, norm.L2{}, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, a := range []core.Algorithm{
		core.LocalGreedy{Workers: 1},
		core.LazyGreedy{},
		core.SimpleGreedy{},
		core.ComplexGreedy{Workers: 1},
	} {
		res, err := a.Run(context.Background(), in, 3)
		if err != nil {
			t.Fatal(err)
		}
		got[a.Name()] = res.Total
	}
	// Structural invariants that hold regardless of the exact digits.
	if got["greedy2"] != got["greedy2-lazy"] {
		t.Fatalf("lazy diverged: %v vs %v", got["greedy2-lazy"], got["greedy2"])
	}
	if got["greedy4"] < got["greedy2"]-1e-9 || got["greedy2"] < got["greedy3"]-1e-9 {
		t.Fatalf("ordering violated: %v", got)
	}
	// Exact reproducibility: a second run yields identical bits.
	res2, err := core.ComplexGreedy{Workers: 8}.Run(context.Background(), in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Total != got["greedy4"] {
		t.Fatalf("greedy4 not reproducible: %v vs %v", res2.Total, got["greedy4"])
	}
	// Pin the generated workload itself (first point, first weight).
	p0 := set.Point(0)
	if set.Weight(0) != math.Trunc(set.Weight(0)) {
		t.Fatalf("weight 0 = %v not integral", set.Weight(0))
	}
	if p0[0] < 0 || p0[0] > 4 || p0[1] < 0 || p0[1] > 4 {
		t.Fatalf("point 0 = %v outside the box", p0)
	}
}

// Fig2 output is a pure closed form: pin a rendered fragment exactly.
func TestGoldenFig2Render(t *testing.T) {
	out, err := RunFig2(context.Background(), RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	text := out.Render()
	for _, want := range []string{
		"1   1.0000   0.1000", // k=1, n=10
		"2   0.7500   0.1900", // k=2, n=10
		"4   0.6836   0.3439", // k=4, n=10
		"2   0.7500   0.0494", // k=2, n=40
		"10  0.6513   0.2237", // k=10, n=40
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fig2 golden fragment %q missing", want)
		}
	}
}
