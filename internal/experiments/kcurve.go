package experiments

import (
	"context"
	"fmt"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// RunKCurve is an extension figure the paper's setup implies but never
// plots: total reward as a function of k for every algorithm on the 40-node
// 2-D workload. Diminishing returns are guaranteed by submodularity for the
// greedy algorithms; the curve makes the paper's k ∈ {2, 4} snapshots
// continuous. One run at k = kMax provides every prefix (the algorithms are
// incremental), so the sweep costs a single run per algorithm and trial.
func RunKCurve(ctx context.Context, cfg RunConfig) (*Output, error) {
	const (
		n    = 40
		r    = 1.0
		kMax = 8
	)
	algs := paperAlgorithms(cfg)
	res, err := sim.RunTrials(ctx, cfg.trials(), cfg.Workers, cfg.Seed^0xc0e,
		func(ctx context.Context, trial int, rng *xrand.Rand) (map[string]float64, error) {
			set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
			if err != nil {
				return nil, err
			}
			in, err := newInstance(set, norm.L2{}, r)
			if err != nil {
				return nil, err
			}
			metrics := map[string]float64{}
			for _, alg := range algs {
				full, err := alg.Run(ctx, in, kMax)
				if err != nil {
					return nil, err
				}
				for j, tot := range full.PrefixTotals() {
					metrics[fmt.Sprintf("%s/k%d", alg.Name(), j+1)] = tot
				}
			}
			return metrics, nil
		})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "kcurve",
		Title:  fmt.Sprintf("total reward vs k (n=%d, 2-norm, r=%g, random weights)", n, r),
		XLabel: "number of broadcasts k",
		YLabel: "total reward",
	}
	tb := report.NewTable("reward vs k", "k", "greedy1", "greedy2", "greedy3", "greedy4")
	xs := make([]float64, kMax)
	series := map[string][]float64{}
	for j := 0; j < kMax; j++ {
		xs[j] = float64(j + 1)
		row := []interface{}{j + 1}
		for _, name := range ratioAlgNames {
			mean, ok := res.Mean(fmt.Sprintf("%s/k%d", name, j+1))
			if !ok {
				return nil, fmt.Errorf("experiments: missing kcurve metric %s/k%d", name, j+1)
			}
			series[name] = append(series[name], mean)
			row = append(row, mean)
		}
		tb.AddRow(row...)
	}
	for _, name := range ratioAlgNames {
		fig.Add(name, xs, series[name])
	}
	out := &Output{Tables: []*report.Table{tb}, Figures: []*report.Figure{fig}}
	out.Notes = append(out.Notes,
		"Diminishing marginal reward in k (submodularity) for greedy1/greedy2/greedy4; greedy3's curve",
		"can locally steepen because its selection rule ignores coverage. All curves are prefixes of a",
		"single k=8 run per algorithm (the algorithms are incremental).")
	return out, nil
}
