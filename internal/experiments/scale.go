package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/reward"
	"repro/internal/spatial"
	"repro/internal/xrand"
)

// RunAblationScale measures the acceleration stack beyond the paper's
// n ≤ 160 scales: plain Algorithm 2 (O(kn²)), the CELF-style lazy variant,
// and both with the uniform-grid neighbor index installed. All four produce
// bit-identical centers and totals (asserted here on every run); only the
// wall time changes.
func RunAblationScale(ctx context.Context, cfg RunConfig) (*Output, error) {
	sizes := []int{500, 2000}
	k, r := 6, 0.4
	if cfg.Quick {
		sizes = []int{300}
	}
	tb := report.NewTable(fmt.Sprintf("scaling ablation (k=%d, r=%g, 2-norm, 4x4 box)", k, r),
		"n", "variant", "total reward", "time", "speedup vs plain")
	out := &Output{}
	rng := xrand.New(cfg.Seed ^ 0x5ca1e)
	for _, n := range sizes {
		set, err := pointset.GenUniform(n, pointset.PaperBox2D(), pointset.RandomIntWeight, rng)
		if err != nil {
			return nil, err
		}
		makeInstance := func(finder string) (*reward.Instance, error) {
			in, err := reward.NewInstance(set, norm.L2{}, r)
			if err != nil {
				return nil, err
			}
			switch finder {
			case "grid":
				g, err := spatial.NewGrid(set.Points(), r)
				if err != nil {
					return nil, err
				}
				in.SetFinder(g)
			case "kdtree":
				kt, err := spatial.NewKDTree(set.Points(), r)
				if err != nil {
					return nil, err
				}
				in.SetFinder(kt)
			}
			return in, nil
		}
		variants := []struct {
			name   string
			alg    core.Algorithm
			finder string
		}{
			{"greedy2 plain", core.LocalGreedy{Workers: 1}, ""},
			{"greedy2 lazy", core.LazyGreedy{}, ""},
			{"greedy2 +grid", core.LocalGreedy{Workers: 1}, "grid"},
			{"greedy2 +kdtree", core.LocalGreedy{Workers: 1}, "kdtree"},
			{"greedy2 lazy+grid", core.LazyGreedy{}, "grid"},
		}
		var plainTime time.Duration
		var wantTotal float64
		for vi, v := range variants {
			in, err := makeInstance(v.finder)
			if err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := v.alg.Run(ctx, in, k)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if vi == 0 {
				plainTime = elapsed
				wantTotal = res.Total
			} else if res.Total != wantTotal {
				return nil, fmt.Errorf("experiments: %s total %v != plain %v (must be bit-identical)",
					v.name, res.Total, wantTotal)
			}
			speedup := float64(plainTime) / float64(elapsed)
			tb.AddRow(n, v.name, res.Total, elapsed.Round(10*time.Microsecond).String(), speedup)
		}
	}
	out.Tables = append(out.Tables, tb)
	out.Notes = append(out.Notes,
		"All variants are exact: lazy evaluation reorders when gains are computed; the grid index",
		"skips only exactly-zero coverage terms and sorts candidates so IEEE sums match bit for bit.",
		"Expected shape: lazy+grid dominates at large n, where O(kn²) full scans waste work on",
		"points far outside every candidate disk.")
	return out, nil
}
