package experiments

import (
	"context"
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/pointset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// RunMultistation compares deployments with the same total broadcast budget:
// one station broadcasting S·k contents versus S stations broadcasting k
// each, with random and interest-aware user assignment. A single station
// with the full budget always has the larger feasible set, so it should win;
// the gap measures the partitioning cost, and interest-aware cells should
// recover part of it on clustered populations.
func RunMultistation(ctx context.Context, cfg RunConfig) (*Output, error) {
	tr, err := trace.Generate(trace.Config{
		N:      80,
		Box:    pointset.PaperBox2D(),
		Kind:   trace.Clustered,
		Scheme: pointset.RandomIntWeight,
		Topics: 4,
		Sigma:  0.3,
	}, xrand.New(cfg.Seed^0x3517))
	if err != nil {
		return nil, err
	}
	periods := 6
	if cfg.Quick {
		periods = 2
	}
	base := broadcast.Config{
		Radius:  1.2,
		Periods: periods,
		Seed:    cfg.Seed ^ 0x3157,
	}
	sched := broadcast.AlgorithmScheduler{Algo: core.LocalGreedy{Workers: 1}}
	const budget = 4 // total broadcasts per period across all stations

	tb := report.NewTable("multi-station deployments under a fixed total budget of 4 broadcasts/period",
		"deployment", "assignment", "mean satisfaction")
	type row struct {
		stations int
		mode     broadcast.AssignMode
	}
	rows := []row{
		{1, broadcast.RandomAssign},
		{2, broadcast.RandomAssign},
		{2, broadcast.NearestAnchor},
		{4, broadcast.RandomAssign},
		{4, broadcast.NearestAnchor},
	}
	for _, r := range rows {
		c := base
		c.K = budget / r.stations
		m, err := broadcast.RunMulti(ctx, tr, sched, c, r.stations, r.mode)
		if err != nil {
			return nil, err
		}
		label := "single station, k=4"
		if r.stations > 1 {
			label = fmt.Sprintf("%d stations, k=%d", r.stations, c.K)
		}
		tb.AddRow(label, r.mode.String(), m.MeanSatisfaction)
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"Same total budget everywhere. The single station dominates (its feasible set contains every",
		"partitioned schedule); interest-aware (nearest-anchor) cells recover part of the partitioning",
		"loss on clustered populations relative to random assignment.")
	return out, nil
}
