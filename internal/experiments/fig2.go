package experiments

import (
	"context"
	"fmt"

	"repro/internal/report"
	"repro/internal/theory"
)

// RunFig2 regenerates Fig. 2: the two closed-form approximation-ratio bounds
// (Theorem 1's 1−(1−1/k)^k and Theorem 2's 1−(1−1/n)^k) as functions of the
// number of centers k, in 10-node and 40-node environments. This is pure
// theory — no simulation — exactly as in the paper.
func RunFig2(_ context.Context, cfg RunConfig) (*Output, error) {
	out := &Output{}
	const kMax = 10
	for _, n := range []int{10, 40} {
		series, err := theory.Fig2Series(n, kMax)
		if err != nil {
			return nil, err
		}
		fig := &report.Figure{
			ID:     fmt.Sprintf("fig2-n%d", n),
			Title:  fmt.Sprintf("approximation ratios, %d-node environment", n),
			XLabel: "number of centers k",
			YLabel: "approximation ratio",
		}
		xs := make([]float64, len(series))
		a1 := make([]float64, len(series))
		a2 := make([]float64, len(series))
		for i, p := range series {
			xs[i] = float64(p.K)
			a1[i] = p.Approx1
			a2[i] = p.Approx2
		}
		fig.Add("approx1 (Thm 1)", xs, a1)
		fig.Add("approx2 (Thm 2)", xs, a2)
		out.Figures = append(out.Figures, fig)

		tb := report.NewTable(fmt.Sprintf("Fig. 2 data, n=%d", n), "k", "approx1", "approx2")
		for _, p := range series {
			tb.AddRow(p.K, p.Approx1, p.Approx2)
		}
		out.Tables = append(out.Tables, tb)
	}
	out.Notes = append(out.Notes,
		"approx1 = 1-(1-1/k)^k (Theorem 1, round-based heuristic); bounded below by 1-1/e.",
		"approx2 = 1-(1-1/n)^k (Theorem 2, local greedy); approx1 dominates approx2 whenever n > k, matching the paper's reading of Fig. 2.")
	return out, nil
}
