package experiments

import (
	"context"
	"fmt"

	"repro/internal/norm"
	"repro/internal/pointset"
	"repro/internal/report"
)

// RunSummary regenerates the §VI.B summary lines: the average approximation
// ratio of each algorithm over the full Figs. 4–7 sweep (both population
// sizes, both weight schemes, both norms, all (k, r) configurations).
//
// Paper's claimed averages (its labels): 2-norm — best 84.22%, mid 68.87%,
// low 55.97%; 1-norm — best 82.76%, mid 68.77%, low 57%. The paper's prose
// attaches those numbers to labels inconsistently with its own Table I; this
// driver reports the measured mean per concretely defined algorithm.
func RunSummary(ctx context.Context, cfg RunConfig) (*Output, error) {
	type cell struct {
		nm     norm.Norm
		scheme pointset.WeightScheme
	}
	cells := []cell{
		{norm.L2{}, pointset.RandomIntWeight},
		{norm.L2{}, pointset.UnitWeight},
		{norm.L1{}, pointset.RandomIntWeight},
		{norm.L1{}, pointset.UnitWeight},
	}
	// Accumulate per-norm and overall means across every configuration.
	perNorm := map[string]map[string][]float64{} // norm -> alg -> cell means
	overall := map[string][]float64{}
	for cellIdx, c := range cells {
		for _, n := range []int{10, 40} {
			for ci, krCfg := range configGrid() {
				salt := uint64(cellIdx)<<24 ^ uint64(n)<<12 ^ uint64(ci)<<4 ^ 0x5a
				means, err := ratioCell(ctx, cfg, n, krCfg, c.nm, c.scheme, salt)
				if err != nil {
					return nil, err
				}
				if perNorm[c.nm.Name()] == nil {
					perNorm[c.nm.Name()] = map[string][]float64{}
				}
				for _, alg := range ratioAlgNames {
					perNorm[c.nm.Name()][alg] = append(perNorm[c.nm.Name()][alg], means[alg])
					overall[alg] = append(overall[alg], means[alg])
				}
			}
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		if len(xs) == 0 {
			return 0
		}
		return s / float64(len(xs))
	}
	tb := report.NewTable("Summary: mean approximation ratio over the Figs. 4-7 sweep",
		"algorithm", "2-norm", "1-norm", "overall")
	for _, alg := range ratioAlgNames {
		tb.AddRow(alg,
			mean(perNorm["2-norm"][alg]),
			mean(perNorm["1-norm"][alg]),
			mean(overall[alg]))
	}
	out := &Output{Tables: []*report.Table{tb}}
	out.Notes = append(out.Notes,
		"Paper's §VI.B claims (best/mid/low per norm): 2-norm 84.22/68.87/55.97%, 1-norm 82.76/68.77/57%.",
		fmt.Sprintf("Measured with %d trials per cell; compare ordering and band, not digits.", cfg.trials()))
	return out, nil
}
