#!/bin/sh
# Wire-schema gate for the v1 API package (api/v1).
#
# Dumps every exported type of the wire package — the request/response
# schema plus the typed Client — and the Code* error constants via
# go doc, strips comments and doc prose so only the declarations remain
# (field names, Go types, JSON tags), and diffs the dump against the
# committed golden in api/v1.golden.txt. Any schema change — a renamed
# field, a retyped value, an edited JSON tag, a removed error code — fails
# ./scripts/check.sh until the golden is regenerated on purpose with:
#
#	./scripts/apicheck.sh -update
#
# Run from the repository root: ./scripts/apicheck.sh
set -eu

cd "$(dirname "$0")/.."

PKG=repro/api/v1
GOLDEN=api/v1.golden.txt

dump() {
	# Each exported type in sorted order, then the error-code const
	# group and the cache-control constant. The sed pass keeps
	# declarations only: drop the "package v1" headers, the
	# 4-space-indented doc prose go doc appends, comment lines, and
	# blanks.
	{
		for t in $(go doc "$PKG" | grep -o '^type [A-Za-z0-9]*' | awk '{print $2}' | sort); do
			go doc "$PKG.$t"
		done
		go doc "$PKG.CodeBadJSON"
		go doc "$PKG.CacheControlBypass"
	} | sed -e '/^package /d' -e '/^    /d' -e 's|[[:space:]]*//.*$||' -e '/^[[:space:]]*$/d'
}

case "${1:-}" in
-update)
	mkdir -p "$(dirname "$GOLDEN")"
	dump >"$GOLDEN"
	echo "apicheck: regenerated $GOLDEN"
	;;
"")
	[ -f "$GOLDEN" ] || {
		echo "apicheck: $GOLDEN missing; run ./scripts/apicheck.sh -update" >&2
		exit 1
	}
	tmp="$(mktemp)"
	trap 'rm -f "$tmp"' EXIT
	if ! dump | diff -u "$GOLDEN" - >"$tmp" 2>&1; then
		echo "apicheck: the v1 wire schema differs from $GOLDEN:" >&2
		cat "$tmp" >&2
		echo "apicheck: if the change is deliberate, run ./scripts/apicheck.sh -update" >&2
		exit 1
	fi
	echo "apicheck OK"
	;;
*)
	echo "usage: $0 [-update]" >&2
	exit 2
	;;
esac
