#!/bin/sh
# Advisory benchmark comparison: run the candidate-scan benchmarks (the gain
# hot path plus the spatial index) and diff them against the committed
# BENCH_baseline.json. Always exits 0 — benchmark noise must not fail CI;
# read the report and investigate lines flagged with "!".
# BENCHTIME shortens/lengthens the per-benchmark budget (default 50ms).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-50ms}"

go test -run '^$' -bench 'RoundGain|Objective|EvaluatorReplace|EvaluatorUser|Near' -benchmem \
	-benchtime "$BENCHTIME" ./internal/reward ./internal/spatial |
	go run ./cmd/benchjson -diff BENCH_baseline.json
