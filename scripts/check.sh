#!/bin/sh
# Tier-1 verification: build, vet, tests, and the race detector.
# Run from the repository root: ./scripts/check.sh
# RACE=0 skips the race pass (it roughly doubles the runtime).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

# Advisory lint: staticcheck when the binary is on PATH (not baked into the
# toolchain image). Never fails the check — read the findings, fix what is
# real. STATICCHECK=0 skips it.
if [ "${STATICCHECK:-1}" != "0" ]; then
	if command -v staticcheck >/dev/null 2>&1; then
		echo "==> staticcheck (advisory)"
		staticcheck ./... || echo "staticcheck reported findings (advisory; not fatal)"
	else
		echo "==> staticcheck not installed; skipping (advisory)"
	fi
fi

echo "==> go test ./..."
go test ./...

# The churn-equivalence gate: incremental evaluator deltas must stay
# bit-identical to from-scratch rebuilds across norms, finders, and batch
# modes. Already part of the full suite above; rerun by name so a failure is
# unmistakably attributed.
echo "==> churn equivalence gate"
go test -run 'TestEvaluatorChurnEquivalence|TestBatchedScalarEquivalence' -count=1 ./internal/reward

# The wire-schema gate: the exported v1 serving API (internal/serve) must
# match the committed golden dump; breaking a field name, type, tag, or
# error code fails here until api/v1.golden.txt is regenerated deliberately.
echo "==> apicheck (v1 wire schema)"
./scripts/apicheck.sh

if [ "${RACE:-1}" != "0" ]; then
	echo "==> go test -race ./..."
	go test -race ./...
fi

# Binary-level cancellation smoke: each cmd tool under a short -timeout must
# exit cleanly with valid partial output. SMOKE=0 skips it.
if [ "${SMOKE:-1}" != "0" ]; then
	echo "==> smoke"
	./scripts/smoke.sh
	echo "==> smoke-cluster"
	./scripts/smoke_cluster.sh
fi

# Advisory benchmark comparison: never fails the check, but surfaces any
# hot-path regression against the committed baseline. BENCH=0 skips it.
if [ "${BENCH:-1}" != "0" ]; then
	echo "==> bench-diff (advisory)"
	./scripts/bench_diff.sh || echo "bench-diff failed (advisory; not fatal)"
fi

echo "OK"
