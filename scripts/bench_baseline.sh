#!/bin/sh
# Regenerate BENCH_baseline.json: run the repository benchmarks and store
# the parsed results. BENCHTIME shortens/lengthens the per-benchmark budget
# (default 100ms keeps the full sweep to a few minutes).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100ms}"

# ./internal/load contributes the serving-side numbers: BenchmarkServeSolve
# and BenchmarkServeChurn run one HTTP request per iteration against an
# in-process cdserved, so the end-to-end request path has a tracked
# latency trajectory alongside the solver kernels.
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" . ./internal/reward ./internal/spatial ./internal/load |
	tee /dev/stderr |
	go run ./cmd/benchjson > BENCH_baseline.json

echo "wrote BENCH_baseline.json" >&2
