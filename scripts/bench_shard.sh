#!/bin/sh
# Sharded-solve benchmark: run the million-user single-shot and sharded
# solves (BenchmarkSingleShotSolve_N1M_K32 / BenchmarkShardedSolve_N1M_K32),
# splice the results into BENCH_baseline.json via benchjson -merge, and
# print the advisory diff — including the single-shot vs sharded speedup
# table. Each iteration is a full ~25s solve, so the benchtime defaults to
# one iteration; raise BENCHTIME (e.g. 3x) for steadier numbers.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run '^$' -bench 'SingleShotSolve_N1M|ShardedSolve_N1M' -benchmem \
	-benchtime "$BENCHTIME" . | tee /dev/stderr > "$out"

go run ./cmd/benchjson -merge BENCH_baseline.json < "$out" > BENCH_baseline.json.tmp
mv BENCH_baseline.json.tmp BENCH_baseline.json
echo "merged shard benchmarks into BENCH_baseline.json" >&2

go run ./cmd/benchjson -diff BENCH_baseline.json < "$out"
