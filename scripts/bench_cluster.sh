#!/bin/sh
# Cluster-solve benchmark: run the million-user sharded solve alone and
# coordinated across a 3-node loopback cluster
# (BenchmarkClusterSolve_N1M_K32/nodes=1 vs /nodes=3), splice the results
# into BENCH_baseline.json via benchjson -merge, and print the advisory diff
# — including the single-node vs cluster speedup/parity table (parity must
# print 1.000x: forwarding is bit-identical by contract). Each iteration is
# a full solve, so the benchtime defaults to one iteration; raise BENCHTIME
# (e.g. 3x) for steadier numbers.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run '^$' -bench 'ClusterSolve_N1M' -benchmem \
	-benchtime "$BENCHTIME" . | tee /dev/stderr > "$out"

go run ./cmd/benchjson -merge BENCH_baseline.json < "$out" > BENCH_baseline.json.tmp
mv BENCH_baseline.json.tmp BENCH_baseline.json
echo "merged cluster benchmarks into BENCH_baseline.json" >&2

go run ./cmd/benchjson -diff BENCH_baseline.json < "$out"
