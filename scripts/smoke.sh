#!/bin/sh
# Smoke test for the anytime-cancellation contract of the cmd/ binaries:
# build each tool, run it with a -timeout short enough to trip mid-work, and
# assert a clean exit (status 0) whose output carries either a finished run
# or the early-stop note with whatever partial results were committed.
# Run from the repository root: ./scripts/smoke.sh
set -eu

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

echo "==> building cmd binaries"
go build -o "$BIN" ./cmd/...

fail() {
	echo "smoke: $1" >&2
	exit 1
}

# expect_clean <label> <output-file> <exit-status>
expect_clean() {
	[ "$3" -eq 0 ] || fail "$1 exited $3 (cancellation must be a clean exit)"
	[ -s "$2" ] || fail "$1 produced no output"
}

echo "==> cdtrace: generate a working trace (with its own -timeout)"
status=0
"$BIN/cdtrace" -n 400 -seed 7 -timeout 10s >"$BIN/trace.json" 2>&1 || status=$?
expect_clean cdtrace "$BIN/trace.json" "$status"

echo "==> cdgreedy: 1ns deadline must yield a clean partial run"
status=0
"$BIN/cdgreedy" -trace "$BIN/trace.json" -k 8 -timeout 1ns >"$BIN/greedy.out" 2>&1 || status=$?
expect_clean cdgreedy "$BIN/greedy.out" "$status"
grep -q "note: run stopped early" "$BIN/greedy.out" ||
	fail "cdgreedy output lacks the early-stop note"

echo "==> cdgreedy: generous deadline must finish without the note"
status=0
"$BIN/cdgreedy" -trace "$BIN/trace.json" -k 2 -timeout 1m >"$BIN/greedy_full.out" 2>&1 || status=$?
expect_clean cdgreedy "$BIN/greedy_full.out" "$status"
grep -q "note: run stopped early" "$BIN/greedy_full.out" &&
	fail "uncancelled cdgreedy run printed the early-stop note"

echo "==> cdgreedy: near-linear grid solver must finish clean with k centers"
status=0
"$BIN/cdgreedy" -trace "$BIN/trace.json" -alg nearlinear -refine 2 -k 4 -timeout 1m >"$BIN/greedy_nls.out" 2>&1 || status=$?
expect_clean "cdgreedy -alg nearlinear" "$BIN/greedy_nls.out" "$status"
grep -q "nearlinear on" "$BIN/greedy_nls.out" ||
	fail "cdgreedy -alg nearlinear output lacks the algorithm header"
grep -q "total reward" "$BIN/greedy_nls.out" ||
	fail "cdgreedy -alg nearlinear output lacks a total"

echo "==> cdstation: 1ns deadline must yield a clean partial run"
status=0
"$BIN/cdstation" -trace "$BIN/trace.json" -k 4 -periods 50 -timeout 1ns >"$BIN/station.out" 2>&1 || status=$?
expect_clean cdstation "$BIN/station.out" "$status"
grep -q "note: run stopped early" "$BIN/station.out" ||
	fail "cdstation output lacks the early-stop note"

echo "==> cdstation -churn: dynamic-instance loop with verification must finish clean"
status=0
"$BIN/cdstation" -trace "$BIN/trace.json" -churn -arrivals 5 -departs 3 -periods 6 \
	-warm -index grid -verify -timeout 1m >"$BIN/churn.out" 2>&1 || status=$?
expect_clean "cdstation -churn" "$BIN/churn.out" "$status"
grep -q "churn loop" "$BIN/churn.out" ||
	fail "cdstation -churn output lacks the churn-loop table"
grep -q "incremental deltas" "$BIN/churn.out" ||
	fail "cdstation -churn output lacks the delta summary"
grep -q "note: run stopped early" "$BIN/churn.out" &&
	fail "uncancelled cdstation -churn run printed the early-stop note"

echo "==> cdbench: 50ms deadline must yield a clean partial run"
status=0
"$BIN/cdbench" -run summary -timeout 50ms >"$BIN/bench.out" 2>&1 || status=$?
expect_clean cdbench "$BIN/bench.out" "$status"
grep -q "note: run stopped early" "$BIN/bench.out" ||
	fail "cdbench output lacks the early-stop note"

echo "==> cdserved: start, serve one solve over HTTP, drain clean on SIGTERM"
"$BIN/cdserved" -addr 127.0.0.1:0 -drain-grace 5s >"$BIN/served.out" 2>&1 &
SERVED_PID=$!
base=""
tries=0
while [ -z "$base" ]; do
	base="$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$BIN/served.out")"
	[ -n "$base" ] && break
	tries=$((tries + 1))
	[ "$tries" -lt 100 ] || {
		kill "$SERVED_PID" 2>/dev/null || true
		fail "cdserved never printed its listening address"
	}
	kill -0 "$SERVED_PID" 2>/dev/null || fail "cdserved died at startup: $(cat "$BIN/served.out")"
	sleep 0.05
done
curl -sf "$base/healthz" >"$BIN/served_health.json" ||
	{ kill "$SERVED_PID" 2>/dev/null || true; fail "cdserved /healthz unreachable"; }
grep -q '"status":"ok"' "$BIN/served_health.json" ||
	fail "cdserved /healthz did not report ok: $(cat "$BIN/served_health.json")"
"$BIN/cdtrace" -n 60 -seed 7 -format set >"$BIN/served_set.json" ||
	fail "cdtrace -format set failed"
printf '{"instance":%s,"radius":1.5,"k":3}' "$(cat "$BIN/served_set.json")" >"$BIN/served_req.json"
curl -sf -X POST --data-binary @"$BIN/served_req.json" "$base/v1/solve" >"$BIN/served_solve.json" ||
	{ kill "$SERVED_PID" 2>/dev/null || true; fail "cdserved POST /v1/solve failed"; }
grep -q '"total":' "$BIN/served_solve.json" ||
	fail "cdserved solve response lacks a total: $(cat "$BIN/served_solve.json")"

echo "==> cdserved: a replayed identical solve is served from the cache"
curl -sf -X POST --data-binary @"$BIN/served_req.json" "$base/v1/solve" >"$BIN/served_solve2.json" ||
	{ kill "$SERVED_PID" 2>/dev/null || true; fail "cdserved duplicate POST /v1/solve failed"; }
grep -q '"cached":true' "$BIN/served_solve2.json" ||
	fail "duplicate solve not served from cache: $(cat "$BIN/served_solve2.json")"
# The cached body must carry the same result as the original.
total1="$(sed -n 's/.*"total":\([0-9.eE+-]*\).*/\1/p' "$BIN/served_solve.json")"
total2="$(sed -n 's/.*"total":\([0-9.eE+-]*\).*/\1/p' "$BIN/served_solve2.json")"
[ "$total1" = "$total2" ] ||
	fail "cached solve total $total2 differs from original $total1"
curl -sf -H 'Accept: text/plain' "$base/metrics" | grep -q '^cd_cache_hits_total [1-9]' ||
	fail "cd_cache_hits_total did not count the cache hit"

echo "==> cdserved: /metrics content-negotiates the Prometheus text format"
curl -sf -H 'Accept: text/plain' "$base/metrics" >"$BIN/served_prom.txt" ||
	{ kill "$SERVED_PID" 2>/dev/null || true; fail "cdserved /metrics (text/plain) unreachable"; }
grep -q '^cd_serve_requests_total ' "$BIN/served_prom.txt" ||
	fail "prometheus exposition lacks cd_serve_requests_total: $(head -5 "$BIN/served_prom.txt")"
grep -q '^# TYPE cd_serve_route_request_seconds histogram' "$BIN/served_prom.txt" ||
	fail "prometheus exposition lacks the per-route latency histogram"
grep -q '_ns ' "$BIN/served_prom.txt" &&
	fail "prometheus exposition leaked a nanosecond metric name"
curl -sf "$base/metrics" | grep -q '"counters"' ||
	fail "cdserved /metrics default JSON output lost"

echo "==> cdload: sustain mixed load, zero 5xx, sane p99"
status=0
"$BIN/cdload" -url "$base" -rate 80 -duration 2s -churn 0.25 -n 60 -seed 7 \
	-max-5xx 0 -slo-p99 10s >"$BIN/load.out" 2>&1 || status=$?
[ "$status" -eq 0 ] ||
	{ kill "$SERVED_PID" 2>/dev/null || true; fail "cdload exited $status: $(cat "$BIN/load.out")"; }
grep -q "rates:" "$BIN/load.out" ||
	fail "cdload output lacks the SLO rates line: $(cat "$BIN/load.out")"
grep -q "throughput" "$BIN/load.out" ||
	fail "cdload output lacks the throughput line"

echo "==> cdload -dup: duplicate replays hit the solve cache"
status=0
"$BIN/cdload" -url "$base" -rate 40 -duration 2s -dup 0.5 -n 600 -seed 7 \
	-max-5xx 0 -bench-out "$BIN/load_dup_bench.json" >"$BIN/load_dup.out" 2>&1 || status=$?
[ "$status" -eq 0 ] ||
	{ kill "$SERVED_PID" 2>/dev/null || true; fail "cdload -dup exited $status: $(cat "$BIN/load_dup.out")"; }
grep -q "hit rate" "$BIN/load_dup.out" ||
	fail "cdload -dup output lacks the cache line: $(cat "$BIN/load_dup.out")"
grep -q "latency hit" "$BIN/load_dup.out" ||
	fail "cdload -dup output lacks hit-path latency quantiles"
grep -q "latency miss" "$BIN/load_dup.out" ||
	fail "cdload -dup output lacks miss-path latency quantiles"
# The hit path skips the solver entirely: on this n=600 scenario its p50
# measures ~14x under the miss p50. Gate on a conservative 3x floor so a
# regression that drags hits back through the solve path fails loudly
# without making the check flaky on slow machines.
hit_p50="$(awk -F': ' '/"name"/ {n=$2} /"p50-ns"/ && n ~ /SolveHit/ {gsub(/[^0-9]/, "", $2); print $2; exit}' "$BIN/load_dup_bench.json")"
miss_p50="$(awk -F': ' '/"name"/ {n=$2} /"p50-ns"/ && n ~ /SolveMiss/ {gsub(/[^0-9]/, "", $2); print $2; exit}' "$BIN/load_dup_bench.json")"
[ -n "$hit_p50" ] && [ -n "$miss_p50" ] ||
	fail "dup bench records lack hit/miss p50: $(cat "$BIN/load_dup_bench.json")"
[ "$((hit_p50 * 3))" -le "$miss_p50" ] ||
	fail "cache hit p50 (${hit_p50}ns) is not well below miss p50 (${miss_p50}ns)"

kill -TERM "$SERVED_PID"
status=0
wait "$SERVED_PID" || status=$?
[ "$status" -eq 0 ] || fail "cdserved exited $status on SIGTERM (drain must be a clean exit)"
grep -q "drain complete" "$BIN/served.out" ||
	fail "cdserved output lacks the drain-complete line: $(cat "$BIN/served.out")"

echo "smoke OK"
