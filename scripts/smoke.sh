#!/bin/sh
# Smoke test for the anytime-cancellation contract of the cmd/ binaries:
# build each tool, run it with a -timeout short enough to trip mid-work, and
# assert a clean exit (status 0) whose output carries either a finished run
# or the early-stop note with whatever partial results were committed.
# Run from the repository root: ./scripts/smoke.sh
set -eu

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

echo "==> building cmd binaries"
go build -o "$BIN" ./cmd/...

fail() {
	echo "smoke: $1" >&2
	exit 1
}

# expect_clean <label> <output-file> <exit-status>
expect_clean() {
	[ "$3" -eq 0 ] || fail "$1 exited $3 (cancellation must be a clean exit)"
	[ -s "$2" ] || fail "$1 produced no output"
}

echo "==> cdtrace: generate a working trace (with its own -timeout)"
status=0
"$BIN/cdtrace" -n 400 -seed 7 -timeout 10s >"$BIN/trace.json" 2>&1 || status=$?
expect_clean cdtrace "$BIN/trace.json" "$status"

echo "==> cdgreedy: 1ns deadline must yield a clean partial run"
status=0
"$BIN/cdgreedy" -trace "$BIN/trace.json" -k 8 -timeout 1ns >"$BIN/greedy.out" 2>&1 || status=$?
expect_clean cdgreedy "$BIN/greedy.out" "$status"
grep -q "note: run stopped early" "$BIN/greedy.out" ||
	fail "cdgreedy output lacks the early-stop note"

echo "==> cdgreedy: generous deadline must finish without the note"
status=0
"$BIN/cdgreedy" -trace "$BIN/trace.json" -k 2 -timeout 1m >"$BIN/greedy_full.out" 2>&1 || status=$?
expect_clean cdgreedy "$BIN/greedy_full.out" "$status"
grep -q "note: run stopped early" "$BIN/greedy_full.out" &&
	fail "uncancelled cdgreedy run printed the early-stop note"

echo "==> cdstation: 1ns deadline must yield a clean partial run"
status=0
"$BIN/cdstation" -trace "$BIN/trace.json" -k 4 -periods 50 -timeout 1ns >"$BIN/station.out" 2>&1 || status=$?
expect_clean cdstation "$BIN/station.out" "$status"
grep -q "note: run stopped early" "$BIN/station.out" ||
	fail "cdstation output lacks the early-stop note"

echo "==> cdstation -churn: dynamic-instance loop with verification must finish clean"
status=0
"$BIN/cdstation" -trace "$BIN/trace.json" -churn -arrivals 5 -departs 3 -periods 6 \
	-warm -index grid -verify -timeout 1m >"$BIN/churn.out" 2>&1 || status=$?
expect_clean "cdstation -churn" "$BIN/churn.out" "$status"
grep -q "churn loop" "$BIN/churn.out" ||
	fail "cdstation -churn output lacks the churn-loop table"
grep -q "incremental deltas" "$BIN/churn.out" ||
	fail "cdstation -churn output lacks the delta summary"
grep -q "note: run stopped early" "$BIN/churn.out" &&
	fail "uncancelled cdstation -churn run printed the early-stop note"

echo "==> cdbench: 50ms deadline must yield a clean partial run"
status=0
"$BIN/cdbench" -run summary -timeout 50ms >"$BIN/bench.out" 2>&1 || status=$?
expect_clean cdbench "$BIN/bench.out" "$status"
grep -q "note: run stopped early" "$BIN/bench.out" ||
	fail "cdbench output lacks the early-stop note"

echo "smoke OK"
