#!/bin/sh
# Near-linear-solver benchmark: run the million-user exact-greedy and
# near-linear solves (BenchmarkSingleShotSolve_N1M_K32 /
# BenchmarkNearLinearSolve_N1M_K32), splice the results into
# BENCH_baseline.json via benchjson -merge, and print the advisory diff —
# including the exact-greedy vs near-linear speedup/quality table. The
# acceptance gate for the approximate solver is quality >= 0.90x at >= 5x
# speedup. The single-shot iteration is a full ~25s solve, so the benchtime
# defaults to one iteration; raise BENCHTIME (e.g. 3x) for steadier numbers.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run '^$' -bench 'SingleShotSolve_N1M|NearLinearSolve_N1M' -benchmem \
	-benchtime "$BENCHTIME" . | tee /dev/stderr > "$out"

go run ./cmd/benchjson -merge BENCH_baseline.json < "$out" > BENCH_baseline.json.tmp
mv BENCH_baseline.json.tmp BENCH_baseline.json
echo "merged near-linear benchmarks into BENCH_baseline.json" >&2

go run ./cmd/benchjson -diff BENCH_baseline.json < "$out"
