#!/bin/sh
# Cluster smoke test: boot a 3-node local cdserved cluster, fan a sharded
# solve out across it, kill one peer mid-run, and assert the coordinator
# still lands the bit-identical answer via local fallback.
#
# Topology: two plain peers plus one coordinator whose -peers points at both.
# The coordinator runs with -cache-bytes 0 (so repeat solves re-forward
# instead of answering from cache) and a long -gossip-every (so after the
# kill its peer table stays stale and the dead peer keeps getting picked —
# the forward fails, the fallback path must answer).
#
# Run from the repository root: ./scripts/smoke_cluster.sh
set -eu

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$BIN"
}
trap cleanup EXIT

fail() {
	echo "smoke-cluster: $1" >&2
	exit 1
}

echo "==> building cdserved + cdtrace"
go build -o "$BIN" ./cmd/cdserved ./cmd/cdtrace

# start_node <logfile> <args...>; sets NODE_PID and NODE_URL. Runs in the
# main shell (not a subshell) so `wait` can observe the node's exit status.
start_node() {
	log="$1"
	shift
	"$BIN/cdserved" "$@" >"$log" 2>&1 &
	NODE_PID=$!
	PIDS="$PIDS $NODE_PID"
	NODE_URL=""
	tries=0
	while [ -z "$NODE_URL" ]; do
		NODE_URL="$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$log")"
		[ -n "$NODE_URL" ] && break
		tries=$((tries + 1))
		[ "$tries" -lt 100 ] || fail "cdserved never printed its listening address: $(cat "$log")"
		kill -0 "$NODE_PID" 2>/dev/null || fail "cdserved died at startup: $(cat "$log")"
		sleep 0.05
	done
}

# The same deterministic population and solve request every time: cdtrace's
# -solve mode regenerates the trace from -seed and POSTs it through the typed
# api/v1 client, so every node must answer with bit-identical centers.
solve() {
	"$BIN/cdtrace" -n 3000 -seed 7 -solve "$1" -k 6 -r 0.5 -alg greedy2-lazy -shards 4
}

# Strip the per-run fields (request id, wall time, cache flag) so two solve
# responses diff clean exactly when centers/gains/total are bit-identical.
stable() {
	grep -v -e '"request_id"' -e '"wall_ns"' -e '"cached"' "$1"
}

echo "==> starting two peers"
start_node "$BIN/peer1.log" -addr 127.0.0.1:0
P1_PID=$NODE_PID P1=$NODE_URL
start_node "$BIN/peer2.log" -addr 127.0.0.1:0
P2_PID=$NODE_PID P2=$NODE_URL
echo "    peer1 $P1 (pid $P1_PID), peer2 $P2 (pid $P2_PID)"

echo "==> reference: the same sharded solve on a single node"
solve "$P1" >"$BIN/ref.json" || fail "reference solve against $P1 failed"
grep -q '"total":' "$BIN/ref.json" || fail "reference solve has no total"

echo "==> starting the coordinator (peers: both; cache off; stale gossip)"
start_node "$BIN/coord.log" -addr 127.0.0.1:0 \
	-peers "$P1,$P2" -cache-bytes 0 -gossip-every 5m
C_PID=$NODE_PID COORD=$NODE_URL
grep -q "cluster mode" "$BIN/coord.log" ||
	fail "coordinator did not report cluster mode: $(cat "$BIN/coord.log")"

# The startup gossip sweep runs async; wait until both peers are live.
tries=0
while :; do
	live="$(curl -sf "$COORD/v1/cluster/health" | grep -o '"live":true' | wc -l)"
	[ "$live" -eq 2 ] && break
	tries=$((tries + 1))
	[ "$tries" -lt 100 ] || fail "coordinator never saw 2 live peers (saw $live)"
	sleep 0.05
done

echo "==> 3-node solve must forward shards and match the single node bit-for-bit"
solve "$COORD" >"$BIN/c1.json" || fail "cluster solve against $COORD failed"
stable "$BIN/ref.json" >"$BIN/ref.stable"
stable "$BIN/c1.json" >"$BIN/c1.stable"
diff -u "$BIN/ref.stable" "$BIN/c1.stable" >/dev/null ||
	fail "3-node result differs from single-node: $(diff "$BIN/ref.stable" "$BIN/c1.stable" | head -20)"
curl -sf -H 'Accept: text/plain' "$COORD/metrics" >"$BIN/m1.txt"
grep -q '^cd_cluster_forwards_total [1-9]' "$BIN/m1.txt" ||
	fail "coordinator forwarded no shards: $(grep cd_cluster "$BIN/m1.txt")"
grep -q '^cd_cluster_peers_live 2' "$BIN/m1.txt" ||
	fail "cd_cluster_peers_live is not 2: $(grep cd_cluster "$BIN/m1.txt")"

echo "==> kill peer2 mid-run; the in-flight and following solves must still land"
solve "$COORD" >"$BIN/c2.json" &
SOLVE_PID=$!
kill -9 "$P2_PID"
wait "$SOLVE_PID" || fail "solve in flight during the kill failed"
solve "$COORD" >"$BIN/c3.json" || fail "solve after the kill failed"
for f in c2 c3; do
	stable "$BIN/$f.json" >"$BIN/$f.stable"
	diff -u "$BIN/ref.stable" "$BIN/$f.stable" >/dev/null ||
		fail "post-kill result $f differs from single-node: $(diff "$BIN/ref.stable" "$BIN/$f.stable" | head -20)"
done
# The stale peer table still ranks peer2 live, so the least-loaded pick
# alternates onto it, the forward gets connection-refused, and the shard is
# re-solved locally — visible as a nonzero fallback counter.
curl -sf -H 'Accept: text/plain' "$COORD/metrics" >"$BIN/m2.txt"
grep -q '^cd_cluster_fallbacks_total [1-9]' "$BIN/m2.txt" ||
	fail "no local fallback was counted after the kill: $(grep cd_cluster "$BIN/m2.txt")"

echo "==> coordinator and surviving peer drain clean"
for pid in "$C_PID" "$P1_PID"; do
	kill -TERM "$pid"
	status=0
	wait "$pid" || status=$?
	[ "$status" -eq 0 ] || fail "node (pid $pid) exited $status on SIGTERM"
done
grep -q "drain complete" "$BIN/coord.log" ||
	fail "coordinator log lacks the drain-complete line: $(cat "$BIN/coord.log")"
PIDS=""

echo "smoke-cluster OK"
