#!/bin/sh
# Load-test the serving stack: boot a local cdserved (unless URL points at a
# running one), drive it with cdload's open-loop Poisson generator, and gate
# on the SLO flags. Knobs come in as environment variables:
#
#   URL       target a running server instead of booting one (default: boot)
#   RATE      offered requests per second        (default 100)
#   DURATION  arrival-generation window          (default 10s)
#   CHURN     fraction of /v1/churn arrivals     (default 0.2)
#   DUP       fraction of solve arrivals replaying a previous body —
#             guaranteed cache hits; the rest are fresh unique
#             instances (default 0 = pooled bodies)
#   SLO_P99   p99 latency bound, 0 = unchecked   (default 0)
#   MAX_5XX   allowed 5xx responses, -1 = any    (default 0)
#   BENCH_OUT write benchjson records here       (default: none)
#
# Examples:
#   ./scripts/load.sh
#   RATE=500 DURATION=30s SLO_P99=250ms ./scripts/load.sh
#   URL=http://127.0.0.1:8080 ./scripts/load.sh
set -eu

cd "$(dirname "$0")/.."

RATE="${RATE:-100}"
DURATION="${DURATION:-10s}"
CHURN="${CHURN:-0.2}"
DUP="${DUP:-0}"
SLO_P99="${SLO_P99:-0}"
MAX_5XX="${MAX_5XX:-0}"
BENCH_OUT="${BENCH_OUT:-}"

BIN="$(mktemp -d)"
SERVED_PID=""
cleanup() {
	[ -n "$SERVED_PID" ] && kill -TERM "$SERVED_PID" 2>/dev/null && wait "$SERVED_PID" 2>/dev/null
	rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/cdload ./cmd/cdserved

base="${URL:-}"
if [ -z "$base" ]; then
	"$BIN/cdserved" -addr 127.0.0.1:0 >"$BIN/served.out" 2>&1 &
	SERVED_PID=$!
	tries=0
	while [ -z "$base" ]; do
		base="$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$BIN/served.out")"
		[ -n "$base" ] && break
		tries=$((tries + 1))
		[ "$tries" -lt 100 ] || { echo "load: cdserved never came up" >&2; exit 1; }
		kill -0 "$SERVED_PID" 2>/dev/null || { cat "$BIN/served.out" >&2; exit 1; }
		sleep 0.05
	done
	echo "load: booted cdserved at $base"
fi

set -- -url "$base" -rate "$RATE" -duration "$DURATION" -churn "$CHURN" \
	-dup "$DUP" -slo-p99 "$SLO_P99" -max-5xx "$MAX_5XX"
[ -n "$BENCH_OUT" ] && set -- "$@" -bench-out "$BENCH_OUT"

"$BIN/cdload" "$@"
